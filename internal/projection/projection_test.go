package projection

import (
	"crypto/rand"
	"errors"
	"fmt"
	"testing"

	"authdb/internal/sigagg"
	"authdb/internal/sigagg/bas"
)

type fixture struct {
	scheme sigagg.Scheme
	priv   sigagg.PrivateKey
	pub    sigagg.PublicKey
	attrs  map[uint64][][]byte
	sigs   map[uint64][]sigagg.Signature
}

func newFixture(t *testing.T, nRecords, nAttrs int) *fixture {
	t.Helper()
	scheme := bas.New(0)
	priv, pub, err := scheme.KeyGen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{scheme: scheme, priv: priv, pub: pub,
		attrs: map[uint64][][]byte{}, sigs: map[uint64][]sigagg.Signature{}}
	for r := 1; r <= nRecords; r++ {
		rid := uint64(r)
		attrs := make([][]byte, nAttrs)
		for i := range attrs {
			attrs[i] = []byte(fmt.Sprintf("r%d-a%d", r, i))
		}
		sigs, err := SignRecord(scheme, priv, rid, attrs, 100)
		if err != nil {
			t.Fatal(err)
		}
		f.attrs[rid] = attrs
		f.sigs[rid] = sigs
	}
	return f
}

func (f *fixture) rows(attrIdxs []int, rids ...uint64) []Row {
	var rows []Row
	for _, rid := range rids {
		vals := make([][]byte, len(attrIdxs))
		for k, idx := range attrIdxs {
			vals[k] = f.attrs[rid][idx]
		}
		rows = append(rows, Row{RID: rid, TS: 100, Values: vals})
	}
	return rows
}

func (f *fixture) build(t *testing.T, attrIdxs []int, rids ...uint64) *Answer {
	t.Helper()
	a, err := Build(f.scheme, attrIdxs, f.rows(attrIdxs, rids...),
		func(rid uint64) ([]sigagg.Signature, error) { return f.sigs[rid], nil })
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestHonestProjection(t *testing.T) {
	f := newFixture(t, 5, 6)
	a := f.build(t, []int{1, 3}, 1, 2, 3)
	if err := Verify(f.scheme, f.pub, a); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestNonContiguousAttributes(t *testing.T) {
	f := newFixture(t, 3, 8)
	a := f.build(t, []int{0, 2, 5, 7}, 1, 3)
	if err := Verify(f.scheme, f.pub, a); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// VO is a single signature regardless of attribute scatter.
	if a.VOSizeBytes(f.scheme) != f.scheme.SignatureSize() {
		t.Fatal("projection VO must be one signature")
	}
}

func TestDetectsSwappedValuesBetweenRecords(t *testing.T) {
	f := newFixture(t, 2, 3)
	a := f.build(t, []int{1}, 1, 2)
	// Swap the attribute values of the two records; aggregation is
	// commutative, so only the rid binding in the digest catches this.
	a.Rows[0].Values[0], a.Rows[1].Values[0] = a.Rows[1].Values[0], a.Rows[0].Values[0]
	err := Verify(f.scheme, f.pub, a)
	if !errors.Is(err, sigagg.ErrVerify) {
		t.Fatalf("swapped values: want ErrVerify, got %v", err)
	}
}

func TestDetectsSwappedAttributeSlots(t *testing.T) {
	f := newFixture(t, 1, 4)
	a := f.build(t, []int{0, 1}, 1)
	// Present attr 1's value in attr 0's slot and vice versa.
	a.Rows[0].Values[0], a.Rows[0].Values[1] = a.Rows[0].Values[1], a.Rows[0].Values[0]
	err := Verify(f.scheme, f.pub, a)
	if !errors.Is(err, sigagg.ErrVerify) {
		t.Fatalf("swapped slots: want ErrVerify, got %v", err)
	}
}

func TestDetectsTamperedValue(t *testing.T) {
	f := newFixture(t, 2, 2)
	a := f.build(t, []int{0}, 1, 2)
	a.Rows[1].Values[0] = []byte("forged")
	err := Verify(f.scheme, f.pub, a)
	if !errors.Is(err, sigagg.ErrVerify) {
		t.Fatalf("tampered value: want ErrVerify, got %v", err)
	}
}

func TestDetectsDroppedRow(t *testing.T) {
	f := newFixture(t, 3, 2)
	a := f.build(t, []int{0}, 1, 2, 3)
	a.Rows = a.Rows[:2] // aggregate still covers 3 rows
	err := Verify(f.scheme, f.pub, a)
	if !errors.Is(err, sigagg.ErrVerify) {
		t.Fatalf("dropped row: want ErrVerify, got %v", err)
	}
}

func TestDetectsStaleTimestamp(t *testing.T) {
	f := newFixture(t, 1, 2)
	a := f.build(t, []int{0}, 1)
	a.Rows[0].TS = 99 // replayed older version claim
	err := Verify(f.scheme, f.pub, a)
	if !errors.Is(err, sigagg.ErrVerify) {
		t.Fatalf("stale ts: want ErrVerify, got %v", err)
	}
}

func TestBuildRejectsBadAttrIndex(t *testing.T) {
	f := newFixture(t, 1, 2)
	rows := []Row{{RID: 1, TS: 100, Values: [][]byte{[]byte("x")}}}
	_, err := Build(f.scheme, []int{5}, rows,
		func(rid uint64) ([]sigagg.Signature, error) { return f.sigs[rid], nil })
	if err == nil {
		t.Fatal("out-of-range attribute accepted")
	}
}

func TestVerifyRejectsMalformedRow(t *testing.T) {
	f := newFixture(t, 1, 3)
	a := f.build(t, []int{0, 1}, 1)
	a.Rows[0].Values = a.Rows[0].Values[:1]
	if err := Verify(f.scheme, f.pub, a); err == nil {
		t.Fatal("malformed row accepted")
	}
	if err := Verify(f.scheme, f.pub, nil); err == nil {
		t.Fatal("nil answer accepted")
	}
}

func TestEmptyProjection(t *testing.T) {
	f := newFixture(t, 1, 2)
	a := f.build(t, []int{0}) // zero rows
	if err := Verify(f.scheme, f.pub, a); err != nil {
		t.Fatalf("empty projection: %v", err)
	}
}
