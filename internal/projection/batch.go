package projection

import (
	"fmt"

	"authdb/internal/sigagg"
)

// SignRecords produces the per-attribute signatures of many records in
// one pass through the signing pool: digest production and signing are
// fanned across the pool's workers and routed through the scheme's
// batch primitives (CRT signing for condensed RSA, precomputed tables
// for BAS), exactly like chained-record signing. The output is
// byte-identical to calling SignRecord per record — parallelism and
// batching change the schedule, never the signatures.
//
// attrs[i] are record i's attribute values, tss[i] its version
// timestamp. Records may have different attribute counts; a record with
// none contributes an empty (non-nil) slice.
func SignRecords(pool *sigagg.Pool, priv sigagg.PrivateKey,
	rids []uint64, attrs [][][]byte, tss []int64) ([][]sigagg.Signature, error) {

	if len(attrs) != len(rids) || len(tss) != len(rids) {
		return nil, fmt.Errorf("projection: %d rids, %d attr sets, %d timestamps",
			len(rids), len(attrs), len(tss))
	}
	total := 0
	for _, a := range attrs {
		total += len(a)
	}
	// Flat index -> (record, attribute slot), so the digest generator is
	// a pair of array reads and safe for concurrent distinct indices.
	recOf := make([]int32, total)
	slotOf := make([]int32, total)
	j := 0
	for i, a := range attrs {
		for k := range a {
			recOf[j], slotOf[j] = int32(i), int32(k)
			j++
		}
	}
	flat, err := pool.SignIndexed(priv, total, func(i int) []byte {
		r, k := recOf[i], slotOf[i]
		d := AttrDigest(rids[r], int(k), attrs[r][k], tss[r])
		return d[:]
	})
	if err != nil {
		return nil, fmt.Errorf("projection: batch attr signing: %w", err)
	}
	out := make([][]sigagg.Signature, len(rids))
	j = 0
	for i, a := range attrs {
		out[i] = flat[j : j+len(a) : j+len(a)]
		j += len(a)
	}
	return out, nil
}
