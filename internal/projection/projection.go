// Package projection implements the attribute-level authentication of
// §3.4: the data aggregator signs every attribute value individually
// with a digest that binds the value to its record and attribute
// position, sign(h(rid | i | Ai | ts)), and sets the record signature to
// the aggregate of its attribute signatures. A projection answer then
// carries a single aggregate signature, with no overhead for the dropped
// attributes, and the server cannot swap values between records or
// attribute slots.
package projection

import (
	"fmt"

	"authdb/internal/digest"
	"authdb/internal/sigagg"
)

// AttrDigest computes h(rid | i | Ai | ts), the signed message for
// attribute index i of record rid.
func AttrDigest(rid uint64, attrIdx int, value []byte, ts int64) digest.Digest {
	w := digest.NewWriter(32 + len(value))
	w.PutUint64(rid)
	w.PutUint64(uint64(attrIdx))
	w.PutBytes(value)
	w.PutInt64(ts)
	return w.Sum()
}

// SignRecord produces the per-attribute signatures for a record. The
// record-level signature is their aggregate.
func SignRecord(scheme sigagg.Scheme, priv sigagg.PrivateKey,
	rid uint64, attrs [][]byte, ts int64) ([]sigagg.Signature, error) {

	sigs := make([]sigagg.Signature, len(attrs))
	for i, a := range attrs {
		d := AttrDigest(rid, i, a, ts)
		sig, err := scheme.Sign(priv, d[:])
		if err != nil {
			return nil, fmt.Errorf("projection: sign attr %d of rid %d: %w", i, rid, err)
		}
		sigs[i] = sig
	}
	return sigs, nil
}

// Row is one projected record in an answer: the record identity plus the
// values of the projected attributes.
type Row struct {
	RID    uint64
	TS     int64
	Values [][]byte // parallel to the projection's attribute indexes
}

// Answer is a verifiable projection result π_{AttrIdxs}(R'): the rows
// plus one aggregate signature over every included attribute value.
type Answer struct {
	AttrIdxs []int
	Rows     []Row
	Agg      sigagg.Signature
}

// Build constructs the answer for the given rows, aggregating the
// matching attribute signatures. attrSigs(rid) must return the record's
// per-attribute signature slice.
func Build(scheme sigagg.Scheme, attrIdxs []int, rows []Row,
	attrSigs func(rid uint64) ([]sigagg.Signature, error)) (*Answer, error) {

	agg, err := scheme.Aggregate(nil)
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		sigs, err := attrSigs(row.RID)
		if err != nil {
			return nil, fmt.Errorf("projection: rid %d: %w", row.RID, err)
		}
		for _, idx := range attrIdxs {
			if idx < 0 || idx >= len(sigs) {
				return nil, fmt.Errorf("projection: attribute %d out of range for rid %d", idx, row.RID)
			}
			agg, err = scheme.Add(agg, sigs[idx])
			if err != nil {
				return nil, err
			}
		}
	}
	return &Answer{AttrIdxs: attrIdxs, Rows: rows, Agg: agg}, nil
}

// Digests reconstructs the attribute digests the aggregate must cover.
func (a *Answer) Digests() ([][]byte, error) {
	var out [][]byte
	for _, row := range a.Rows {
		if len(row.Values) != len(a.AttrIdxs) {
			return nil, fmt.Errorf("projection: row rid %d has %d values, want %d",
				row.RID, len(row.Values), len(a.AttrIdxs))
		}
		for k, idx := range a.AttrIdxs {
			d := AttrDigest(row.RID, idx, row.Values[k], row.TS)
			out = append(out, d[:])
		}
	}
	return out, nil
}

// Verify checks that every projected value is authentic and sits in the
// claimed record and attribute position.
func Verify(scheme sigagg.Scheme, pub sigagg.PublicKey, a *Answer) error {
	if a == nil {
		return fmt.Errorf("%w: nil answer", sigagg.ErrVerify)
	}
	ds, err := a.Digests()
	if err != nil {
		return fmt.Errorf("%w: %v", sigagg.ErrVerify, err)
	}
	return scheme.AggregateVerify(pub, ds, a.Agg)
}

// VOSizeBytes is the proof overhead: a single aggregate signature,
// independent of both the number of projected and dropped attributes.
func (a *Answer) VOSizeBytes(scheme sigagg.Scheme) int {
	return scheme.SignatureSize()
}
