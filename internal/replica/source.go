// Package replica implements the untrusted replica fleet: follower
// processes that mirror a primary's serving state and re-serve it to
// verifying clients.
//
// The trust model is the paper's: a replica is just another untrusted
// publisher. Everything it serves — records, chained signatures,
// certified summaries — is owner-signed, so a follower needs no
// credentials and performs no verification of the feed; a Byzantine
// follower can at worst serve stale, forked, or garbled state, all of
// which the *client* detects (freshness misses, ErrDiverged, signature
// failures). Replication here is purely an availability/throughput
// mechanism, never a correctness one.
//
// Protocol (wire 'R'/'B'/'W'/'H' frames): a follower subscribes with
// the last LSN it applied. The primary either tails its WAL from that
// point or, when the log has been truncated past it (or the follower
// is fresh), streams a bootstrap image captured from the live
// QueryServer, then feeds every subsequent dissemination message in
// LSN order with idle-time heartbeats carrying the primary's LSN so
// followers can expose their replication lag.
package replica

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"authdb/internal/core"
	"authdb/internal/wal"
	"authdb/internal/wire"
)

// SourceConfig tunes the primary's replication feed.
type SourceConfig struct {
	// Heartbeat is the idle-feed cadence of 'H' frames (0 = 500ms).
	Heartbeat time.Duration
	// WriteTimeout bounds each frame write to a follower (0 = never). A
	// stalled follower is disconnected rather than allowed to wedge the
	// stream goroutine.
	WriteTimeout time.Duration
	// SubBuffer is each subscriber's in-memory record buffer (0 = 4096).
	// A follower that falls further behind than this while the primary
	// publishes is cut off and must resubscribe (tail or re-bootstrap).
	SubBuffer int
}

// Source is the primary-side replication hub. The primary's single
// writer calls Publish after each (log append, QueryServer apply) pair;
// Source fans the encoded message out to every subscribed follower.
// ServeConn runs one follower's stream and is called by the network
// front end when a connection's first frame is an 'R' subscription.
type Source struct {
	qs  *core.QueryServer
	log *wal.Log // optional: enables tail catch-up without a full image
	cfg SourceConfig

	mu      sync.Mutex
	lastLSN uint64
	subs    map[*subscriber]struct{}

	streams    atomic.Uint64 // follower streams ever started
	active     atomic.Int64  // follower streams currently live
	bootstraps atomic.Uint64 // 'B' images served
	fanout     atomic.Uint64 // 'W' records fanned out (all subscribers)
}

type subscriber struct {
	ch    chan streamFrame
	start uint64 // Source.lastLSN at registration
	quit  chan struct{}
	once  sync.Once // closes quit (overrun)
}

// streamFrame is one published record: the LSN plus the shared,
// immutable AppendUpdateMsg encoding.
type streamFrame struct {
	lsn  uint64
	data []byte
}

// NewSource builds the replication hub over the primary's live
// QueryServer. log, when non-nil, is the primary's WAL: it lets a
// briefly-disconnected follower catch up from the log tail instead of
// re-bootstrapping a full image.
func NewSource(qs *core.QueryServer, log *wal.Log, cfg SourceConfig) *Source {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	if cfg.SubBuffer <= 0 {
		cfg.SubBuffer = 4096
	}
	s := &Source{qs: qs, log: log, cfg: cfg, subs: make(map[*subscriber]struct{})}
	if log != nil {
		s.lastLSN = log.LastLSN()
	}
	return s
}

// Publish fans one applied dissemination message out to the
// subscribers. The caller is the primary's single writer and must call
// Publish after the message is (a) appended to the WAL as lsn and (b)
// applied to the QueryServer, in ascending LSN order — the
// apply-before-publish ordering is what makes a bootstrap image
// captured at any point consistent with the LSN it claims.
func (s *Source) Publish(lsn uint64, msg *core.UpdateMsg) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastLSN = lsn
	if len(s.subs) == 0 {
		return
	}
	// Encoded once, shared by every subscriber; never pooled — a slow
	// subscriber may still hold it after Publish returns.
	data := wire.AppendUpdateMsg(make([]byte, 0, 256), msg)
	for sub := range s.subs {
		select {
		case sub.ch <- streamFrame{lsn: lsn, data: data}:
			s.fanout.Add(1)
		default:
			// Overrun: the follower is too far behind to feed from
			// memory. Cut the stream; it will resubscribe and catch up
			// from the log or a fresh bootstrap.
			sub.once.Do(func() { close(sub.quit) })
		}
	}
}

// LastLSN reports the newest published (or recovered) LSN.
func (s *Source) LastLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastLSN
}

// SourceStats are the hub's monotonic counters.
type SourceStats struct {
	Streams    uint64 // follower streams started
	Active     int64  // follower streams currently live
	Bootstraps uint64 // bootstrap images served
	Fanout     uint64 // records fanned out across all subscribers
}

// Stats snapshots the hub counters.
func (s *Source) Stats() SourceStats {
	return SourceStats{
		Streams:    s.streams.Load(),
		Active:     s.active.Load(),
		Bootstraps: s.bootstraps.Load(),
		Fanout:     s.fanout.Load(),
	}
}

func (s *Source) subscribe() *subscriber {
	sub := &subscriber{
		ch:   make(chan streamFrame, s.cfg.SubBuffer),
		quit: make(chan struct{}),
	}
	s.mu.Lock()
	sub.start = s.lastLSN
	s.subs[sub] = struct{}{}
	s.mu.Unlock()
	return sub
}

func (s *Source) unsubscribe(sub *subscriber) {
	s.mu.Lock()
	delete(s.subs, sub)
	s.mu.Unlock()
}

// ServeConn streams the replication feed to one follower that
// subscribed after afterLSN, until the connection fails, the follower
// falls hopelessly behind, or stop closes (server shutdown). The
// caller owns conn and closes it after ServeConn returns.
func (s *Source) ServeConn(conn net.Conn, afterLSN uint64, stop <-chan struct{}) error {
	s.streams.Add(1)
	s.active.Add(1)
	defer s.active.Add(-1)
	sub := s.subscribe()
	defer s.unsubscribe(sub)

	buf := wire.GetBuffer()
	defer func() { wire.PutBuffer(buf) }() // buf is regrown per frame; pool the final one
	send := func(payload []byte) error {
		if t := s.cfg.WriteTimeout; t > 0 {
			conn.SetWriteDeadline(time.Now().Add(t))
		}
		return wire.WriteFrame(conn, payload)
	}

	// Catch the follower up to the subscription point. Everything
	// published after sub.start arrives on the channel; everything at or
	// before it must come from the log tail or a bootstrap image.
	from := afterLSN
	canTail := from >= sub.start
	if !canTail && s.log != nil {
		if first := s.log.FirstLSN(); first > 0 && from+1 >= first {
			canTail = true
		}
	}
	if !canTail {
		// The image is captured after reading sub.start, and the writer
		// publishes only after applying — so the image holds every
		// record ≤ sub.start. It may also hold a few already-applied
		// records past it; the follower's LSN dedup makes the overlap a
		// harmless re-apply.
		st := s.qs.Snapshot()
		buf = wire.AppendBootstrap(buf[:0], sub.start, st)
		if err := send(buf); err != nil {
			return err
		}
		s.bootstraps.Add(1)
		from = sub.start
	}
	if from < sub.start {
		// Tail the WAL for (from, sub.start]. The log holds every
		// record ≤ sub.start: appends happen before publishes.
		err := s.log.Replay(func(lsn uint64, kind byte, body []byte) error {
			if kind != wal.KindUpdate || lsn <= from || lsn > sub.start {
				return nil
			}
			buf = wire.AppendWalRecord(buf[:0], lsn, sub.start, body)
			return send(buf)
		})
		if err != nil {
			return err
		}
		from = sub.start
	}

	hb := time.NewTicker(s.cfg.Heartbeat)
	defer hb.Stop()
	for {
		select {
		case fr := <-sub.ch:
			if fr.lsn <= from {
				continue // duplicate with the catch-up phase
			}
			buf = wire.AppendWalRecord(buf[:0], fr.lsn, s.LastLSN(), fr.data)
			if err := send(buf); err != nil {
				return err
			}
			from = fr.lsn
		case <-hb.C:
			buf = wire.AppendReplHeartbeat(buf[:0], s.LastLSN())
			if err := send(buf); err != nil {
				return err
			}
		case <-sub.quit:
			return fmt.Errorf("replica: follower overran the %d-record feed buffer", s.cfg.SubBuffer)
		case <-stop:
			return nil
		}
	}
}
