package replica_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"authdb/internal/client"
	"authdb/internal/core"
	"authdb/internal/replica"
	"authdb/internal/server"
	"authdb/internal/sigagg/xortest"
	"authdb/internal/wal"
	"authdb/internal/workload"
)

// primaryFixture is a loaded primary serving both queries and the
// replication feed, with a single-writer publish helper that keeps the
// WAL (optional), QueryServer, and Source in the required
// append → apply → publish order.
type primaryFixture struct {
	sys     *core.System
	store   *wal.Store
	src     *replica.Source
	srv     *server.NetServer
	addr    string
	ts      int64
	nextLSN uint64
	keys    []int64
}

func newPrimary(t *testing.T, n int, withLog bool) (*primaryFixture, func()) {
	t.Helper()
	sys, err := core.NewSystem(xortest.New(), core.DefaultConfig(), core.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	f := &primaryFixture{sys: sys, ts: 1}
	if withLog {
		store, err := wal.Open(t.TempDir(), wal.Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		f.store = store
	}
	var log *wal.Log
	if f.store != nil {
		log = f.store.Log()
	}
	f.src = replica.NewSource(sys.QS, log, replica.SourceConfig{Heartbeat: 20 * time.Millisecond})

	recs := workload.Records(workload.Config{N: n, RecLen: 32, Seed: 7})
	f.keys = workload.Keys(recs)
	msg, err := sys.DA.Load(recs, f.ts)
	if err != nil {
		t.Fatal(err)
	}
	f.publish(t, msg)

	f.srv = server.NewNetServer(sys.QS, server.NetConfig{})
	f.srv.EnableReplication(f.src)
	ln, err := f.srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- f.srv.Serve(ln) }()
	f.addr = ln.Addr().String()
	return f, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := f.srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; !errors.Is(err, server.ErrServerClosed) {
			t.Errorf("serve returned %v", err)
		}
		if f.store != nil {
			f.store.Close()
		}
	}
}

// publish routes one dissemination message through the fixture's
// single-writer pipeline.
func (f *primaryFixture) publish(t *testing.T, msg *core.UpdateMsg) {
	t.Helper()
	var lsn uint64
	if f.store != nil {
		var err error
		if lsn, err = f.store.AppendMsg(msg); err != nil {
			t.Fatal(err)
		}
	} else {
		f.nextLSN++
		lsn = f.nextLSN
	}
	if err := f.sys.QS.Apply(msg); err != nil {
		t.Fatal(err)
	}
	f.src.Publish(lsn, msg)
}

// update mutates one key and closes a ρ-period, publishing both.
func (f *primaryFixture) update(t *testing.T, key int64) {
	t.Helper()
	f.ts++
	msg, err := f.sys.DA.Update(key, [][]byte{[]byte(fmt.Sprintf("u-%d", f.ts))}, f.ts)
	if err != nil {
		t.Fatal(err)
	}
	f.publish(t, msg)
	f.ts++
	sum, err := f.sys.DA.ClosePeriod(f.ts)
	if err != nil {
		t.Fatal(err)
	}
	f.publish(t, sum)
}

func newTestFollower(t *testing.T, f *primaryFixture) *replica.Follower {
	t.Helper()
	fl, err := replica.NewFollower(replica.FollowerConfig{
		Scheme:      f.sys.Scheme,
		QSOpts:      []core.Option{core.WithShards(4)},
		ReadTimeout: 2 * time.Second,
		RetryBase:   10 * time.Millisecond,
		RetryMax:    100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fl
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// caughtUp reports whether the follower mirrors the primary exactly.
func caughtUp(f *primaryFixture, fl *replica.Follower) bool {
	return fl.AppliedLSN() == f.src.LastLSN() &&
		fl.QS().Len() == f.sys.QS.Len() &&
		len(fl.QS().SummariesSince(0)) == len(f.sys.QS.SummariesSince(0))
}

// TestFollowerBootstrapImage exercises the 'B' path: a primary without
// a WAL can only serve a full image, and the follower installs it and
// stays current from the live feed.
func TestFollowerBootstrapImage(t *testing.T) {
	f, shutdown := newPrimary(t, 300, false)
	defer shutdown()
	fl := newTestFollower(t, f)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go fl.Run(ctx, f.addr)

	waitUntil(t, "bootstrap catch-up", func() bool { return caughtUp(f, fl) })
	if fl.Stats().Bootstraps == 0 {
		t.Fatal("no-WAL primary must bootstrap with an image")
	}
	for i := 0; i < 5; i++ {
		f.update(t, f.keys[i])
	}
	waitUntil(t, "live tail", func() bool { return caughtUp(f, fl) })
	if fl.Lag() != 0 {
		t.Fatalf("lag = %d after catch-up", fl.Lag())
	}
	// Heartbeats keep the primary LSN observable on an idle feed.
	waitUntil(t, "heartbeat", func() bool { return fl.PrimaryLSN() == f.src.LastLSN() })
}

// TestFollowerTailsLog exercises the 'W' catch-up path: with the
// primary's WAL intact, a fresh follower replays it instead of
// receiving an image, and a restarted follower resumes from its
// applied LSN without re-bootstrapping.
func TestFollowerTailsLog(t *testing.T) {
	f, shutdown := newPrimary(t, 300, true)
	defer shutdown()
	fl := newTestFollower(t, f)
	ctx, cancel := context.WithCancel(context.Background())
	go fl.Run(ctx, f.addr)
	waitUntil(t, "log catch-up", func() bool { return caughtUp(f, fl) })
	if b := fl.Stats().Bootstraps; b != 0 {
		t.Fatalf("bootstraps = %d, want 0 (log tail suffices)", b)
	}

	// Stop the feed, advance the primary, restart: the follower
	// resumes after its applied LSN and only tails the delta.
	cancel()
	waitUntil(t, "feed stopped", func() bool { return ctx.Err() != nil })
	applied := fl.AppliedLSN()
	for i := 0; i < 4; i++ {
		f.update(t, f.keys[10+i])
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go fl.Run(ctx2, f.addr)
	waitUntil(t, "resumed catch-up", func() bool { return caughtUp(f, fl) })
	if fl.AppliedLSN() <= applied {
		t.Fatal("follower did not advance after resume")
	}
	if b := fl.Stats().Bootstraps; b != 0 {
		t.Fatalf("bootstraps = %d after resume, want 0", b)
	}
}

// TestFollowerRebootstrapsPastTruncation: when the primary's log has
// been truncated past the follower's position (snapshot + DropThrough
// while the follower was away), resubscription falls back to a fresh
// image.
func TestFollowerRebootstrapsPastTruncation(t *testing.T) {
	f, shutdown := newPrimary(t, 200, true)
	defer shutdown()
	fl := newTestFollower(t, f)
	ctx, cancel := context.WithCancel(context.Background())
	go fl.Run(ctx, f.addr)
	waitUntil(t, "initial catch-up", func() bool { return caughtUp(f, fl) })
	cancel()

	for i := 0; i < 3; i++ {
		f.update(t, f.keys[i])
	}
	// Snapshot the primary and truncate every covered segment, so the
	// follower's resume point predates the log.
	snap, err := wal.Capture(f.sys.DA, f.sys.QS, f.store.LastLSN(), f.ts)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.store.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	f.update(t, f.keys[5]) // ensure the feed has post-snapshot traffic
	if first := f.store.Log().FirstLSN(); first <= fl.AppliedLSN()+1 {
		t.Fatalf("log not truncated (first=%d, follower at %d): test setup broken", first, fl.AppliedLSN())
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go fl.Run(ctx2, f.addr)
	waitUntil(t, "re-bootstrap", func() bool { return caughtUp(f, fl) })
	if b := fl.Stats().Bootstraps; b == 0 {
		t.Fatal("truncated log must force an image bootstrap")
	}
}

// TestFollowerPauseResume: Pause freezes the replica (the chaos
// harness's artificial lag), Resume catches it back up.
func TestFollowerPauseResume(t *testing.T) {
	f, shutdown := newPrimary(t, 200, true)
	defer shutdown()
	fl := newTestFollower(t, f)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go fl.Run(ctx, f.addr)
	waitUntil(t, "catch-up", func() bool { return caughtUp(f, fl) })

	fl.Pause()
	frozen := fl.AppliedLSN()
	for i := 0; i < 5; i++ {
		f.update(t, f.keys[20+i])
	}
	time.Sleep(50 * time.Millisecond) // the feed must NOT advance
	if fl.AppliedLSN() != frozen {
		t.Fatalf("paused follower advanced: %d -> %d", frozen, fl.AppliedLSN())
	}
	fl.Resume()
	waitUntil(t, "post-resume catch-up", func() bool { return caughtUp(f, fl) })
}

// TestFollowerServesVerifyingClient is the end-to-end trust story: a
// verifying client sessions against the *follower*, syncs the
// certified summary stream, and fully verifies answers — the replica
// is never trusted, and its answers carry the owner's signatures.
func TestFollowerServesVerifyingClient(t *testing.T) {
	f, shutdown := newPrimary(t, 400, true)
	defer shutdown()
	fl := newTestFollower(t, f)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go fl.Run(ctx, f.addr)
	waitUntil(t, "catch-up", func() bool { return caughtUp(f, fl) })

	fsrv := server.NewNetServer(fl.QS(), server.NetConfig{})
	ln, err := fsrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fsrv.Serve(ln)
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		fsrv.Shutdown(sctx)
	}()

	cl, err := client.Dial(ln.Addr().String(), client.Config{Scheme: f.sys.Scheme, Pub: f.sys.Pub})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.SyncSummaries(0); err != nil {
		t.Fatal(err)
	}
	ranges := []core.Range{
		{Lo: f.keys[0], Hi: f.keys[40]},
		{Lo: f.keys[100], Hi: f.keys[160]},
	}
	if _, _, err := cl.QueryBatch(ranges); err != nil {
		t.Fatalf("verified query against follower: %v", err)
	}

	// Advance the primary; once the follower caught up, the client
	// re-anchors and verifies the post-update answer too.
	f.update(t, f.keys[1])
	waitUntil(t, "catch-up after update", func() bool { return caughtUp(f, fl) })
	if _, _, err := cl.QueryBatch(ranges); err != nil {
		t.Fatalf("verified post-update query: %v", err)
	}
}
