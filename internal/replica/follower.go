package replica

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"authdb/internal/core"
	"authdb/internal/sigagg"
	"authdb/internal/wire"
)

// FollowerConfig parameterizes a replica follower.
type FollowerConfig struct {
	// Scheme is the (bound) signature scheme of the catalog; required.
	// The follower never verifies — it inherits the scheme only so its
	// QueryServer can build aggregation structures.
	Scheme sigagg.Scheme
	// QSOpts configure the follower's QueryServer (shards, parallelism).
	QSOpts []core.Option
	// MaxFrame caps a feed frame's payload (0 = wire.DefaultMaxFrame).
	// Bootstrap images of the whole catalog arrive as one frame; size
	// accordingly.
	MaxFrame int
	// DialTimeout bounds connecting to the primary (0 = 2s).
	DialTimeout time.Duration
	// ReadTimeout bounds the wait for each feed frame (0 = 10s). It
	// must comfortably exceed the source's heartbeat cadence; expiry
	// means the primary is unreachable and the follower redials.
	ReadTimeout time.Duration
	// RetryBase/RetryMax shape the reconnect backoff (0 = 50ms / 2s).
	RetryBase time.Duration
	RetryMax  time.Duration
}

// FollowerStats snapshots a follower's replication state.
type FollowerStats struct {
	AppliedLSN uint64 // last dissemination message applied
	PrimaryLSN uint64 // primary's LSN as last reported on the feed
	Lag        uint64 // PrimaryLSN - AppliedLSN (0 when caught up)
	Bootstraps uint64 // full images installed
	Records    uint64 // 'W' records applied
	Reconnects uint64 // feed sessions re-established
}

// Follower mirrors a primary's serving state into its own QueryServer
// by consuming the replication feed. It holds no keys and verifies
// nothing — it is itself an untrusted publisher, and the clients it
// serves verify everything. Run the feed loop on one goroutine; the
// QueryServer is concurrently readable throughout (bootstrap installs
// use the live-swap Restore path).
type Follower struct {
	cfg FollowerConfig
	qs  *core.QueryServer

	applied    atomic.Uint64
	primary    atomic.Uint64
	bootstraps atomic.Uint64
	records    atomic.Uint64
	reconnects atomic.Uint64

	mu      sync.Mutex
	paused  bool
	unpause chan struct{}
	curConn net.Conn
}

// NewFollower builds a follower with an empty QueryServer.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("replica: scheme is required")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 10 * time.Second
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 50 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 2 * time.Second
	}
	return &Follower{
		cfg: cfg,
		qs:  core.NewQueryServer(cfg.Scheme, cfg.QSOpts...),
	}, nil
}

// QS exposes the follower's QueryServer for serving (wrap it in a
// server.NetServer, enable caches, etc.).
func (f *Follower) QS() *core.QueryServer { return f.qs }

// AppliedLSN reports the last LSN applied locally.
func (f *Follower) AppliedLSN() uint64 { return f.applied.Load() }

// PrimaryLSN reports the primary's LSN as last observed on the feed.
func (f *Follower) PrimaryLSN() uint64 { return f.primary.Load() }

// Lag reports how many records the follower is behind the primary, as
// of the last feed frame. A partitioned follower's lag freezes at its
// last observation — pair it with feed liveness (Reconnects climbing
// means the primary is unreachable).
func (f *Follower) Lag() uint64 {
	p, a := f.primary.Load(), f.applied.Load()
	if p > a {
		return p - a
	}
	return 0
}

// Stats snapshots the follower counters.
func (f *Follower) Stats() FollowerStats {
	return FollowerStats{
		AppliedLSN: f.applied.Load(),
		PrimaryLSN: f.primary.Load(),
		Lag:        f.Lag(),
		Bootstraps: f.bootstraps.Load(),
		Records:    f.records.Load(),
		Reconnects: f.reconnects.Load(),
	}
}

// Pause suspends the feed (the current session is torn down and no new
// one is dialed), freezing the follower's state so it serves an
// increasingly stale catalog — the chaos harness uses this to hold a
// replica artificially lagged. Serving continues throughout.
func (f *Follower) Pause() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.paused {
		return
	}
	f.paused = true
	f.unpause = make(chan struct{})
	if f.curConn != nil {
		f.curConn.Close()
	}
}

// Resume lifts a Pause; the feed redials and catches up.
func (f *Follower) Resume() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.paused {
		return
	}
	f.paused = false
	close(f.unpause)
	f.unpause = nil
}

// pauseGate returns the channel a paused feed waits on (nil when
// running).
func (f *Follower) pauseGate() chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.unpause
}

// Run drives the feed until ctx is done: dial the primary, subscribe
// after the last applied LSN, apply the stream, and on any failure
// back off and redial — resubscription is always safe because the
// source either tails from the requested LSN or re-bootstraps. Returns
// ctx.Err() on shutdown.
func (f *Follower) Run(ctx context.Context, primaryAddr string) error {
	delay := f.cfg.RetryBase
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if gate := f.pauseGate(); gate != nil {
			select {
			case <-gate:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		beforeApplied, beforeBoot := f.applied.Load(), f.bootstraps.Load()
		err := f.session(ctx, primaryAddr)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		_ = err // every session error has the same reaction: redial
		f.reconnects.Add(1)
		if f.applied.Load() != beforeApplied || f.bootstraps.Load() != beforeBoot {
			// Progress this session: restart the backoff ladder.
			delay = f.cfg.RetryBase
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
		if delay *= 2; delay > f.cfg.RetryMax {
			delay = f.cfg.RetryMax
		}
	}
}

// session runs one feed connection until it fails or ctx/Pause tears
// it down.
func (f *Follower) session(ctx context.Context, addr string) error {
	conn, err := net.DialTimeout("tcp", addr, f.cfg.DialTimeout)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.curConn = conn
	f.mu.Unlock()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()
	defer func() {
		f.mu.Lock()
		if f.curConn == conn {
			f.curConn = nil
		}
		f.mu.Unlock()
		conn.Close()
	}()

	req := wire.AppendReplSubReq(wire.GetBuffer(), f.applied.Load())
	werr := wire.WriteFrame(conn, req)
	wire.PutBuffer(req)
	if werr != nil {
		return werr
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	var frame []byte
	for {
		conn.SetReadDeadline(time.Now().Add(f.cfg.ReadTimeout))
		frame, err = wire.ReadFrame(br, frame, f.cfg.MaxFrame)
		if err != nil {
			return err
		}
		if err := f.apply(frame); err != nil {
			return err
		}
	}
}

// errFeedGap reports a non-contiguous feed; resubscribing (which tails
// or re-bootstraps from the applied LSN) repairs it.
var errFeedGap = errors.New("replica: feed gap")

// apply dispatches one feed frame.
func (f *Follower) apply(frame []byte) error {
	kind, err := wire.Kind(frame)
	if err != nil {
		return err
	}
	switch kind {
	case 'B':
		lsn, st, err := wire.DecodeBootstrap(frame)
		if err != nil {
			return err
		}
		if err := f.qs.Restore(st); err != nil {
			return err
		}
		f.applied.Store(lsn)
		f.observePrimary(lsn)
		f.bootstraps.Add(1)
		return nil
	case 'W':
		lsn, primaryLSN, msg, err := wire.DecodeWalRecord(frame)
		if err != nil {
			return err
		}
		f.observePrimary(primaryLSN)
		a := f.applied.Load()
		if lsn <= a {
			return nil // overlap with a bootstrap image: idempotent skip
		}
		if lsn != a+1 {
			return fmt.Errorf("%w: applied %d, got %d", errFeedGap, a, lsn)
		}
		if err := f.qs.Apply(msg); err != nil {
			return err
		}
		f.applied.Store(lsn)
		f.records.Add(1)
		return nil
	case 'H':
		lsn, err := wire.DecodeReplHeartbeat(frame)
		if err != nil {
			return err
		}
		f.observePrimary(lsn)
		return nil
	case 'E':
		code, msg, err := wire.DecodeErrorCode(frame)
		if err != nil {
			return err
		}
		return fmt.Errorf("replica: primary refused subscription (code %d): %s", code, msg)
	default:
		return fmt.Errorf("%w: unexpected feed frame %q", wire.ErrCorrupt, kind)
	}
}

// observePrimary advances the primary-LSN high-water mark.
func (f *Follower) observePrimary(lsn uint64) {
	for {
		cur := f.primary.Load()
		if lsn <= cur || f.primary.CompareAndSwap(cur, lsn) {
			return
		}
	}
}
