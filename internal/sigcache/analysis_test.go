package sigcache

import (
	"math"
	"testing"
)

func TestXiPaperExamples(t *testing.T) {
	// Section 4.1's running example: N = 16, q = 7.
	a, err := NewAnalyzer(16, Uniform)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		level int
		pos   int64
		want  int64
	}{
		{3, 0, 0}, {3, 1, 0}, // 2^3 = 8 > 7: irrelevant
		{2, 0, 1}, {2, 3, 1}, // edge nodes: one query each
		{2, 1, 4}, {2, 2, 4}, // interior: q - 2^i + 1 = 4
		{1, 1, 2}, {1, 3, 2}, // odd j, first condition: 2^1
		{1, 5, 1},                          // odd j, second condition
		{1, 7, 0},                          // odd j, third condition
		{0, 11, 0}, {0, 13, 0}, {0, 15, 0}, // even-position leaves... (odd j, none)
		{1, 4, 2}, {1, 6, 2}, // even j, first condition
		{0, 8, 1}, {0, 10, 1}, {0, 12, 1}, {0, 14, 1},
		{1, 2, 1}, {0, 6, 1}, // even j, second condition
		{0, 0, 0}, {0, 2, 0}, {0, 4, 0}, {1, 0, 0}, // even j, third condition
	}
	for _, c := range cases {
		if got := a.Xi(Node{Level: c.level, Pos: c.pos}, 7); got != c.want {
			t.Errorf("ξ(T%d,%d | 7) = %d, want %d", c.level, c.pos, got, c.want)
		}
	}
}

func TestProbMatchesNaive(t *testing.T) {
	for _, dist := range []struct {
		name string
		d    Dist
	}{{"harmonic", Harmonic}, {"uniform", Uniform}} {
		t.Run(dist.name, func(t *testing.T) {
			a, err := NewAnalyzer(256, dist.d)
			if err != nil {
				t.Fatal(err)
			}
			for level := 0; level <= a.Levels(); level++ {
				J := int64(256) >> level
				for pos := int64(0); pos < J; pos++ {
					n := Node{Level: level, Pos: pos}
					got, want := a.Prob(n), a.ProbNaive(n)
					if math.Abs(got-want) > 1e-12 {
						t.Fatalf("%v: closed form %.15f vs naive %.15f", n, got, want)
					}
				}
			}
		})
	}
}

func TestProbSumsToExpectedComponents(t *testing.T) {
	// Σ_{i,j} P(Ti,j)·1 counts the expected number of decomposition
	// components per query; it must be positive and at most log-squared-
	// ish. More precisely Σ_j ξ(Ti,j|q) over all nodes equals the number
	// of components used by all (N-q+1) queries of cardinality q; we
	// validate via the identity Σ_nodes P = E[#components].
	a, _ := NewAnalyzer(64, Uniform)
	var sum float64
	for level := 0; level <= a.Levels(); level++ {
		J := int64(64) >> level
		for pos := int64(0); pos < J; pos++ {
			sum += a.Prob(Node{Level: level, Pos: pos})
		}
	}
	// The canonical decomposition of any range over N=64 leaves has at
	// most 2·log2(N) = 12 components and at least 1.
	if sum < 1 || sum > 12 {
		t.Fatalf("E[#components] = %f, implausible", sum)
	}
}

func TestBaseCost(t *testing.T) {
	a, _ := NewAnalyzer(16, Uniform)
	// Uniform over q=1..16: Σ (q-1)/16 = (0+1+...+15)/16 = 7.5.
	if math.Abs(a.BaseCost()-7.5) > 1e-12 {
		t.Fatalf("BaseCost = %f, want 7.5", a.BaseCost())
	}
}

func TestMirror(t *testing.T) {
	a, _ := NewAnalyzer(16, Uniform)
	if m := a.Mirror(Node{Level: 2, Pos: 1}); m != (Node{Level: 2, Pos: 2}) {
		t.Fatalf("mirror of T2,1 = %v", m)
	}
	if m := a.Mirror(Node{Level: 4, Pos: 0}); m != (Node{Level: 4, Pos: 0}) {
		t.Fatalf("root must mirror itself, got %v", m)
	}
}

func TestMirrorProbEqual(t *testing.T) {
	a, _ := NewAnalyzer(128, Harmonic)
	for level := 1; level < a.Levels(); level++ {
		J := int64(128) >> level
		for pos := int64(0); pos < J/2; pos++ {
			n := Node{Level: level, Pos: pos}
			m := a.Mirror(n)
			if math.Abs(a.Prob(n)-a.Prob(m)) > 1e-15 {
				t.Fatalf("P(%v) != P(%v)", n, m)
			}
		}
	}
}

func TestSelectPaperN16(t *testing.T) {
	// §4.1's running example: "the most beneficial aggregate signatures
	// to cache are T2,1 and T2,2, followed by T1,1 and T1,6 ... The top
	// three signatures, T4,0, T3,0 and T3,1, are also cached." The exact
	// interleaving of the root group with the second-from-edge pairs
	// depends on the distribution; we assert the first pair and the
	// membership of the paper's full list.
	for _, dist := range []Dist{Harmonic, Uniform} {
		a, _ := NewAnalyzer(16, dist)
		sel := a.Select(6)
		if len(sel.Nodes) < 4 {
			t.Fatalf("selected %d nodes", len(sel.Nodes))
		}
		if sel.Nodes[0] != (Node{Level: 2, Pos: 1}) || sel.Nodes[1] != (Node{Level: 2, Pos: 2}) {
			t.Fatalf("first pair = %v,%v, want T2,1/T2,2", sel.Nodes[0], sel.Nodes[1])
		}
		have := map[Node]bool{}
		for _, n := range sel.Nodes {
			have[n] = true
		}
		for _, want := range []Node{
			{Level: 1, Pos: 1}, {Level: 1, Pos: 6},
			{Level: 3, Pos: 0}, {Level: 3, Pos: 1}, {Level: 4, Pos: 0},
		} {
			if !have[want] {
				t.Errorf("paper-listed node %v not selected (got %v)", want, sel.Nodes)
			}
		}
	}
}

func TestSelectSecondFromEdgePattern(t *testing.T) {
	// The paper's consistent finding: the best nodes are the second from
	// the left/right edges, from the third-highest level downwards.
	a, err := NewAnalyzer(1<<16, Harmonic)
	if err != nil {
		t.Fatal(err)
	}
	sel := a.Select(4)
	if len(sel.Nodes) < 8 {
		t.Fatalf("selected %d nodes", len(sel.Nodes))
	}
	top := a.Levels() - 2 // third-highest level
	for pair := 0; pair < 4; pair++ {
		left, right := sel.Nodes[2*pair], sel.Nodes[2*pair+1]
		wantLevel := top - pair
		if left.Level != wantLevel || left.Pos != 1 {
			t.Fatalf("pair %d left = %v, want T%d,1", pair, left, wantLevel)
		}
		J := int64(1<<16) >> wantLevel
		if right.Level != wantLevel || right.Pos != J-2 {
			t.Fatalf("pair %d right = %v, want T%d,%d", pair, right, wantLevel, J-2)
		}
	}
}

func TestSelectCostMonotone(t *testing.T) {
	a, _ := NewAnalyzer(1<<14, Uniform)
	sel := a.Select(10)
	prev := a.BaseCost()
	for k, cost := range sel.CostAfterPair {
		if cost >= prev {
			t.Fatalf("cost after pair %d = %f, not below %f", k, cost, prev)
		}
		prev = cost
	}
}

func TestSelectReductionMatchesFig6Shape(t *testing.T) {
	// Fig. 6: eight cached pairs cut proof construction by 57% (skewed)
	// and 75% (uniform) at N=2^20. At N=2^16 the same order of reduction
	// must hold.
	aH, _ := NewAnalyzer(1<<16, Harmonic)
	selH := aH.Select(8)
	reductionH := 1 - selH.CostAfterPair[len(selH.CostAfterPair)-1]/aH.BaseCost()
	if reductionH < 0.40 {
		t.Fatalf("harmonic reduction with 8 pairs = %.2f, want >= 0.40", reductionH)
	}
	aU, _ := NewAnalyzer(1<<16, Uniform)
	selU := aU.Select(8)
	reductionU := 1 - selU.CostAfterPair[len(selU.CostAfterPair)-1]/aU.BaseCost()
	if reductionU < 0.60 {
		t.Fatalf("uniform reduction with 8 pairs = %.2f, want >= 0.60", reductionU)
	}
	// Uniform (long queries) benefits more than harmonic (short queries).
	if reductionU <= reductionH {
		t.Fatalf("uniform reduction %.2f should exceed harmonic %.2f", reductionU, reductionH)
	}
}

func TestNewAnalyzerRejectsBadInput(t *testing.T) {
	if _, err := NewAnalyzer(12, Uniform); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, err := NewAnalyzer(0, Uniform); err == nil {
		t.Fatal("zero accepted")
	}
	if _, err := NewAnalyzer(8, func(q int) float64 { return 0 }); err == nil {
		t.Fatal("zero distribution accepted")
	}
	if _, err := NewAnalyzer(8, func(q int) float64 { return -1 }); err == nil {
		t.Fatal("negative distribution accepted")
	}
}

func TestNodeSpan(t *testing.T) {
	lo, hi := (Node{Level: 2, Pos: 1}).Span()
	if lo != 4 || hi != 7 {
		t.Fatalf("span = [%d,%d], want [4,7]", lo, hi)
	}
	lo, hi = (Node{Level: 0, Pos: 9}).Span()
	if lo != 9 || hi != 9 {
		t.Fatalf("leaf span = [%d,%d]", lo, hi)
	}
}
