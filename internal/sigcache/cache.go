package sigcache

import (
	"fmt"
	"sync"

	"authdb/internal/sigagg"
)

// Strategy selects how cached aggregates are maintained under updates
// (§4.3).
type Strategy int

const (
	// Eager refreshes every affected cached aggregate inside the update,
	// by adding the inverse of the old leaf signature and the new one.
	Eager Strategy = iota
	// Lazy invalidates affected aggregates and refreshes them on first
	// use, coalescing repeated updates to the same leaf.
	Lazy
)

func (s Strategy) String() string {
	if s == Lazy {
		return "lazy"
	}
	return "eager"
}

// Stats counts the cache's work in aggregation-equivalent operations
// (each Add/Remove/combine is one ECC-addition-cost operation, the unit
// of §4.1's savings model).
type Stats struct {
	QueryOps   uint64 // ops spent building query aggregates
	RefreshOps uint64 // ops spent refreshing cached aggregates
	PinOps     uint64 // ops spent materializing pinned aggregates
	Hits       uint64 // cached aggregates used by queries
	Queries    uint64
	Updates    uint64
}

type delta struct {
	old, new sigagg.Signature
}

type entry struct {
	node     Node
	sig      sigagg.Signature
	pending  map[int64]delta // leaf index -> coalesced delta (lazy)
	accesses uint64
}

// Cache holds the leaf signatures of a relation (in indexed-attribute
// position order) plus a set of pinned aggregate signatures, and builds
// range aggregates using the cheapest available cover.
type Cache struct {
	mu         sync.Mutex // serializes all operations: lazy refreshes mutate on the query path
	scheme     sigagg.Scheme
	n          int64
	levels     int
	leaves     []sigagg.Signature
	entries    map[Node]*entry
	strategy   Strategy
	stats      Stats
	admitLevel int // >0: auto-admit computed blocks at this level or above (§4.2)
}

// NewCache creates a cache over the given leaf signatures (length a
// power of two).
func NewCache(scheme sigagg.Scheme, leaves []sigagg.Signature, strategy Strategy) (*Cache, error) {
	n := int64(len(leaves))
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("sigcache: leaf count must be a power of two >= 2, got %d", n)
	}
	levels := 0
	for v := n; v > 1; v >>= 1 {
		levels++
	}
	own := make([]sigagg.Signature, n)
	copy(own, leaves)
	return &Cache{
		scheme:   scheme,
		n:        n,
		levels:   levels,
		leaves:   own,
		entries:  map[Node]*entry{},
		strategy: strategy,
	}, nil
}

// N returns the number of leaves.
func (c *Cache) N() int64 { return c.n }

// Stats returns a snapshot of the accumulated counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats zeroes the counters.
func (c *Cache) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
}

// CachedBytes reports the memory held by pinned aggregates.
func (c *Cache) CachedBytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries) * c.scheme.SignatureSize()
}

// Len returns the number of pinned aggregates.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Pin materializes and pins the aggregate signatures for the given
// nodes (typically an Analyzer.Select result). Nodes are computed using
// previously pinned descendants where possible, so pin order matters
// only for the one-off materialization cost.
func (c *Cache) Pin(nodes []Node) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range nodes {
		if n.Level < 1 || n.Level > c.levels || n.Pos < 0 || n.Pos >= c.n>>n.Level {
			return fmt.Errorf("sigcache: node %v out of range", n)
		}
		if _, ok := c.entries[n]; ok {
			continue
		}
		lo, hi := n.Span()
		sig, ops, err := c.cover(Node{Level: c.levels, Pos: 0}, lo, hi, false)
		if err != nil {
			return err
		}
		c.stats.PinOps += uint64(ops)
		c.entries[n] = &entry{node: n, sig: sig, pending: map[int64]delta{}}
	}
	return nil
}

// Unpin drops a pinned aggregate.
func (c *Cache) Unpin(n Node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, n)
}

// AggregateRange builds the aggregate signature over leaves [lo, hi]
// (inclusive), using pinned aggregates where they help. It returns the
// signature and the number of aggregation operations spent (the §4
// cost unit).
func (c *Cache) AggregateRange(lo, hi int64) (sigagg.Signature, int, error) {
	if lo < 0 || hi >= c.n || lo > hi {
		return nil, 0, fmt.Errorf("sigcache: bad range [%d,%d] over %d leaves", lo, hi, c.n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Queries++
	sig, ops, err := c.cover(Node{Level: c.levels, Pos: 0}, lo, hi, true)
	if err != nil {
		return nil, 0, err
	}
	c.stats.QueryOps += uint64(ops)
	return sig, ops, nil
}

// cover recursively builds the aggregate of node ∩ [lo, hi]. When
// countHit is set, cache usage statistics are recorded.
func (c *Cache) cover(node Node, lo, hi int64, countHit bool) (sigagg.Signature, int, error) {
	nlo, nhi := node.Span()
	if nhi < lo || nlo > hi {
		return nil, 0, nil
	}
	if lo <= nlo && nhi <= hi {
		// Fully covered: use the pinned aggregate if present.
		if e, ok := c.entries[node]; ok {
			refreshOps, err := c.refresh(e)
			if err != nil {
				return nil, 0, err
			}
			if countHit {
				c.stats.Hits++
				e.accesses++
			}
			return e.sig, refreshOps, nil
		}
		if node.Level == 0 {
			return c.leaves[nlo], 0, nil
		}
	}
	if node.Level == 0 {
		return c.leaves[nlo], 0, nil
	}
	left := Node{Level: node.Level - 1, Pos: node.Pos * 2}
	right := Node{Level: node.Level - 1, Pos: node.Pos*2 + 1}
	lsig, lops, err := c.cover(left, lo, hi, countHit)
	if err != nil {
		return nil, 0, err
	}
	rsig, rops, err := c.cover(right, lo, hi, countHit)
	if err != nil {
		return nil, 0, err
	}
	ops := lops + rops
	switch {
	case lsig == nil:
		return rsig, ops, nil
	case rsig == nil:
		return lsig, ops, nil
	default:
		sum, err := c.scheme.Add(lsig, rsig)
		if err != nil {
			return nil, 0, err
		}
		ops++
		// Adaptive admission (§4.2): keep block aggregates computed on
		// the query path so later queries reuse them.
		if countHit && c.admitLevel > 0 && node.Level >= c.admitLevel &&
			lo <= nlo && nhi <= hi {
			if _, cached := c.entries[node]; !cached {
				c.entries[node] = &entry{node: node, sig: sum, pending: map[int64]delta{}}
			}
		}
		return sum, ops, nil
	}
}

// refresh applies any pending lazy deltas to a cached entry, returning
// the operations spent.
func (c *Cache) refresh(e *entry) (int, error) {
	if len(e.pending) == 0 {
		return 0, nil
	}
	ops := 0
	for _, d := range e.pending {
		var err error
		e.sig, err = c.scheme.Remove(e.sig, d.old)
		if err != nil {
			return ops, err
		}
		e.sig, err = c.scheme.Add(e.sig, d.new)
		if err != nil {
			return ops, err
		}
		ops += 2
	}
	e.pending = map[int64]delta{}
	c.stats.RefreshOps += uint64(ops)
	return ops, nil
}

// UpdateLeaf installs a new signature for leaf idx and maintains the
// affected cached aggregates per the configured strategy. It returns
// the aggregation operations spent inside the update (zero under Lazy).
func (c *Cache) UpdateLeaf(idx int64, sig sigagg.Signature) (int, error) {
	if idx < 0 || idx >= c.n {
		return 0, fmt.Errorf("sigcache: leaf %d out of range", idx)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Updates++
	old := c.leaves[idx]
	c.leaves[idx] = sig
	ops := 0
	for l, pos := 1, idx>>1; l <= c.levels; l, pos = l+1, pos>>1 {
		e, ok := c.entries[Node{Level: l, Pos: pos}]
		if !ok {
			continue
		}
		if c.strategy == Eager {
			// Apply any older pending deltas first (strategy switches).
			if _, err := c.refresh(e); err != nil {
				return ops, err
			}
			var err error
			e.sig, err = c.scheme.Remove(e.sig, old)
			if err != nil {
				return ops, err
			}
			e.sig, err = c.scheme.Add(e.sig, sig)
			if err != nil {
				return ops, err
			}
			ops += 2
		} else {
			// Coalesce: repeated updates to one leaf cost a single
			// remove/add pair at refresh time.
			if d, ok := e.pending[idx]; ok {
				e.pending[idx] = delta{old: d.old, new: sig}
			} else {
				e.pending[idx] = delta{old: old, new: sig}
			}
		}
	}
	c.stats.RefreshOps += uint64(ops)
	return ops, nil
}

// Leaf returns the current signature of leaf idx.
func (c *Cache) Leaf(idx int64) sigagg.Signature {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leaves[idx]
}

// AccessCounts returns the per-node access counters, for the adaptive
// revision of §4.2.
func (c *Cache) AccessCounts() map[Node]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[Node]uint64, len(c.entries))
	for n, e := range c.entries {
		out[n] = e.accesses
	}
	return out
}

// Revise drops the pinned aggregates whose access counts fall below
// minAccesses, keeping at most maxNodes of the most-accessed ones —
// the periodic cache revision of §4.2 restricted to the cached set.
func (c *Cache) Revise(minAccesses uint64, maxNodes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	type na struct {
		n Node
		a uint64
	}
	var all []na
	for n, e := range c.entries {
		all = append(all, na{n, e.accesses})
	}
	// Selection by access count, descending.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].a > all[j-1].a; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	for i, x := range all {
		if x.a < minAccesses || (maxNodes > 0 && i >= maxNodes) {
			delete(c.entries, x.n)
		}
	}
	for _, e := range c.entries {
		e.accesses = 0
	}
}
