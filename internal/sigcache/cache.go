package sigcache

import (
	"fmt"
	"sync"

	"authdb/internal/aggtree"
	"authdb/internal/sigagg"
)

// Strategy selects how cached aggregates are maintained under updates
// (§4.3).
type Strategy int

const (
	// Eager refreshes every affected cached aggregate inside the update,
	// by adding the inverse of the old leaf signature and the new one.
	Eager Strategy = iota
	// Lazy invalidates affected aggregates and refreshes them on first
	// use, coalescing repeated updates to the same leaf.
	Lazy
)

func (s Strategy) String() string {
	if s == Lazy {
		return "lazy"
	}
	return "eager"
}

func (s Strategy) policy() aggtree.RefreshPolicy {
	if s == Lazy {
		return aggtree.LazyRefresh
	}
	return aggtree.EagerRefresh
}

// Stats counts the cache's work in aggregation-equivalent operations
// (each Add/Remove/combine is one ECC-addition-cost operation, the unit
// of §4.1's savings model).
type Stats struct {
	QueryOps   uint64 // ops spent building query aggregates
	RefreshOps uint64 // ops spent refreshing cached aggregates
	PinOps     uint64 // ops spent materializing pinned aggregates
	Hits       uint64 // cached aggregates used by queries
	Queries    uint64
	Updates    uint64
}

// Cache holds the leaf signatures of a relation (in indexed-attribute
// position order) plus a set of pinned aggregate signatures, and builds
// range aggregates using the cheapest available cover. The tree
// mechanics live in aggtree.Frontier; Cache adds the paper's policies
// (Algorithm 1 selection via Analyzer, §4.2 admission and revision) and
// the cost accounting.
type Cache struct {
	mu       sync.Mutex // serializes all operations: lazy refreshes mutate on the query path
	scheme   sigagg.Scheme
	frontier *aggtree.Frontier
	strategy Strategy
	stats    Stats
}

// NewCache creates a cache over the given leaf signatures (length a
// power of two).
func NewCache(scheme sigagg.Scheme, leaves []sigagg.Signature, strategy Strategy) (*Cache, error) {
	f, err := aggtree.NewFrontier(scheme, leaves, strategy.policy())
	if err != nil {
		return nil, fmt.Errorf("sigcache: %w", err)
	}
	return &Cache{scheme: scheme, frontier: f, strategy: strategy}, nil
}

// N returns the number of leaves.
func (c *Cache) N() int64 { return c.frontier.N() }

// Stats returns a snapshot of the accumulated counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats zeroes the counters.
func (c *Cache) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
}

// CachedBytes reports the memory held by pinned aggregates.
func (c *Cache) CachedBytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frontier.PinnedCount() * c.scheme.SignatureSize()
}

// Len returns the number of pinned aggregates.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frontier.PinnedCount()
}

// Pin materializes and pins the aggregate signatures for the given
// nodes (typically an Analyzer.Select result). Nodes are computed using
// previously pinned descendants where possible, so pin order matters
// only for the one-off materialization cost.
func (c *Cache) Pin(nodes []Node) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range nodes {
		ops, refreshOps, err := c.frontier.Pin(n)
		c.stats.PinOps += uint64(ops)
		c.stats.RefreshOps += uint64(refreshOps)
		if err != nil {
			return fmt.Errorf("sigcache: %w", err)
		}
	}
	return nil
}

// Unpin drops a pinned aggregate.
func (c *Cache) Unpin(n Node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frontier.Unpin(n)
}

// AggregateRange builds the aggregate signature over leaves [lo, hi]
// (inclusive), using pinned aggregates where they help. It returns the
// signature and the number of aggregation operations spent (the §4
// cost unit).
func (c *Cache) AggregateRange(lo, hi int64) (sigagg.Signature, int, error) {
	if lo < 0 || hi >= c.frontier.N() || lo > hi {
		return nil, 0, fmt.Errorf("sigcache: bad range [%d,%d] over %d leaves", lo, hi, c.frontier.N())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Queries++
	sig, st, err := c.frontier.Cover(lo, hi, true)
	if err != nil {
		return nil, 0, err
	}
	c.stats.QueryOps += uint64(st.Ops)
	c.stats.RefreshOps += uint64(st.RefreshOps)
	c.stats.Hits += uint64(st.Hits)
	return sig, st.Ops, nil
}

// EstimateOps reports what AggregateRange(lo, hi) would cost right now
// in aggregation operations, without performing any — used by the query
// server to take the cache only when it beats the aggregation tree.
func (c *Cache) EstimateOps(lo, hi int64) (int, error) {
	if lo < 0 || hi >= c.frontier.N() || lo > hi {
		return 0, fmt.Errorf("sigcache: bad range [%d,%d] over %d leaves", lo, hi, c.frontier.N())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frontier.CoverOps(lo, hi), nil
}

// UpdateLeaf installs a new signature for leaf idx and maintains the
// affected cached aggregates per the configured strategy. It returns
// the aggregation operations spent inside the update (zero under Lazy).
func (c *Cache) UpdateLeaf(idx int64, sig sigagg.Signature) (int, error) {
	if idx < 0 || idx >= c.frontier.N() {
		return 0, fmt.Errorf("sigcache: leaf %d out of range", idx)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Updates++
	ops, staleOps, err := c.frontier.UpdateLeaf(idx, sig)
	c.stats.RefreshOps += uint64(ops + staleOps)
	return ops, err
}

// Leaf returns the current signature of leaf idx.
func (c *Cache) Leaf(idx int64) sigagg.Signature {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frontier.Leaf(idx)
}

// AccessCounts returns the per-node access counters, for the adaptive
// revision of §4.2.
func (c *Cache) AccessCounts() map[Node]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	acc := c.frontier.Accesses()
	out := make(map[Node]uint64, len(acc))
	for _, na := range acc {
		out[na.Node] = na.Count
	}
	return out
}

// Revise drops the pinned aggregates whose access counts fall below
// minAccesses, keeping at most maxNodes of the most-accessed ones —
// the periodic cache revision of §4.2 restricted to the cached set.
func (c *Cache) Revise(minAccesses uint64, maxNodes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	all := c.frontier.Accesses()
	// Selection by access count, descending.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].Count > all[j-1].Count; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	for i, x := range all {
		if x.Count < minAccesses || (maxNodes > 0 && i >= maxNodes) {
			c.frontier.Unpin(x.Node)
		}
	}
	c.frontier.ResetAccesses()
}
