package sigcache

import (
	"crypto/rand"
	"fmt"
	mrand "math/rand"
	"testing"

	"authdb/internal/digest"
	"authdb/internal/sigagg"
	"authdb/internal/sigagg/xortest"
)

func TestEmpiricalDistFollowsSamples(t *testing.T) {
	// Short-query-heavy samples must put more probability mass on small
	// cardinalities in the resulting analyzer.
	var samples []int
	for i := 0; i < 900; i++ {
		samples = append(samples, 1+i%8) // short
	}
	for i := 0; i < 100; i++ {
		samples = append(samples, 1000+i) // long tail
	}
	dist, err := EmpiricalDist(samples, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(1<<12, dist)
	if err != nil {
		t.Fatal(err)
	}
	// The base cost should sit near the sample mean cardinality, far
	// below the uniform mean.
	if a.BaseCost() > 300 {
		t.Fatalf("base cost %.0f does not track the short-query samples", a.BaseCost())
	}
	u, _ := NewAnalyzer(1<<12, Uniform)
	if a.BaseCost() >= u.BaseCost() {
		t.Fatal("empirical dist must differ from uniform for skewed samples")
	}
}

func TestEmpiricalDistBucketSmoothing(t *testing.T) {
	dist, err := EmpiricalDist([]int{100}, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	// 100 lies in bucket [64,128): nearby cardinalities get smoothed
	// weight well above the floor.
	if dist(100) <= dist(70) {
		t.Fatal("observed cardinality must outweigh neighbours")
	}
	if dist(70) < 1000*dist(5) {
		t.Fatalf("same-bucket smoothing missing: d(70)=%g d(5)=%g", dist(70), dist(5))
	}
}

func TestEmpiricalDistErrors(t *testing.T) {
	if _, err := EmpiricalDist([]int{1}, 12); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, err := EmpiricalDist([]int{0, -5, 1 << 20}, 1<<10); err == nil {
		t.Fatal("no in-range samples accepted")
	}
}

func newXorCache(t *testing.T, n int, strat Strategy) (*Cache, sigagg.Scheme) {
	t.Helper()
	scheme := xortest.New()
	priv, _, err := scheme.KeyGen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	leaves := make([]sigagg.Signature, n)
	for i := range leaves {
		d := digest.Sum([]byte(fmt.Sprintf("a-%d", i)))
		leaves[i], _ = scheme.Sign(priv, d[:])
	}
	c, err := NewCache(scheme, leaves, strat)
	if err != nil {
		t.Fatal(err)
	}
	return c, scheme
}

func TestAutoAdmitReusesComputedBlocks(t *testing.T) {
	c, _ := newXorCache(t, 256, Lazy)
	c.AutoAdmit(4) // admit blocks of >= 16 leaves
	// First query computes and admits the aligned blocks it covers.
	_, ops1, err := c.AggregateRange(0, 255)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() == 0 {
		t.Fatal("no blocks admitted")
	}
	// Repeating the same query must be much cheaper.
	_, ops2, err := c.AggregateRange(0, 255)
	if err != nil {
		t.Fatal(err)
	}
	if ops2 != 0 {
		t.Fatalf("repeat query cost %d ops, want 0 (root admitted)", ops2)
	}
	if ops1 != 255 {
		t.Fatalf("first query cost %d ops, want 255", ops1)
	}
}

func TestAutoAdmitRespectsMinLevel(t *testing.T) {
	c, _ := newXorCache(t, 64, Eager)
	c.AutoAdmit(6)          // only the root (level 6) qualifies
	c.AggregateRange(0, 31) // level-5 block: not admitted
	if c.Len() != 0 {
		t.Fatalf("admitted %d nodes below minLevel", c.Len())
	}
	c.AggregateRange(0, 63)
	if c.Len() != 1 {
		t.Fatalf("root not admitted (len=%d)", c.Len())
	}
}

func TestAutoAdmitDisabled(t *testing.T) {
	c, _ := newXorCache(t, 64, Eager)
	c.AggregateRange(0, 63)
	if c.Len() != 0 {
		t.Fatal("admission happened without AutoAdmit")
	}
}

func TestAutoAdmittedEntriesStayCorrectUnderUpdates(t *testing.T) {
	c, scheme := newXorCache(t, 128, Lazy)
	c.AutoAdmit(3)
	priv, pub, _ := scheme.KeyGen(rand.Reader)
	digests := make([][]byte, 128)
	for i := range digests {
		d := digest.Sum([]byte(fmt.Sprintf("a2-%d", i)))
		digests[i] = d[:]
		sig, _ := scheme.Sign(priv, d[:])
		if _, err := c.UpdateLeaf(int64(i), sig); err != nil {
			t.Fatal(err)
		}
	}
	c.AggregateRange(0, 127) // admit blocks
	// Update a leaf under an admitted block, then verify the aggregate.
	d := digest.Sum([]byte("a2-50-v2"))
	sig, _ := scheme.Sign(priv, d[:])
	digests[50] = d[:]
	if _, err := c.UpdateLeaf(50, sig); err != nil {
		t.Fatal(err)
	}
	agg, _, err := c.AggregateRange(0, 127)
	if err != nil {
		t.Fatal(err)
	}
	if err := scheme.AggregateVerify(pub, digests, agg); err != nil {
		t.Fatalf("admitted blocks stale after update: %v", err)
	}
}

func TestAdaptiveEndToEnd(t *testing.T) {
	// The full §4.2 loop: observe a workload, build an empirical
	// distribution, select and pin, auto-admit during serving, revise.
	const n = 1 << 12
	c, _ := newXorCache(t, n, Lazy)
	rng := mrand.New(mrand.NewSource(11))
	var observed []int
	for i := 0; i < 500; i++ {
		observed = append(observed, 256+rng.Intn(256))
	}
	dist, err := EmpiricalDist(observed, n)
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalyzer(n, dist)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Pin(an.Select(8).Nodes); err != nil {
		t.Fatal(err)
	}
	c.AutoAdmit(6)
	c.ResetStats()
	var totalOps int
	for i := 0; i < 300; i++ {
		q := int64(256 + rng.Intn(256))
		lo := rng.Int63n(int64(n) - q)
		_, ops, err := c.AggregateRange(lo, lo+q-1)
		if err != nil {
			t.Fatal(err)
		}
		totalOps += ops
	}
	noCacheOps := 300 * 383 // mean (q-1)
	if totalOps >= noCacheOps {
		t.Fatalf("adaptive cache did not reduce ops: %d vs %d", totalOps, noCacheOps)
	}
	before := c.Len()
	c.Revise(5, 64)
	if c.Len() > 64 || c.Len() > before {
		t.Fatalf("Revise kept %d nodes (before %d)", c.Len(), before)
	}
}
