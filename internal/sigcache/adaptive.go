package sigcache

import "fmt"

// This file implements the adaptive deployment of §4.2: the server
// seeds the cache from past-query statistics (EmpiricalDist feeding
// Analyzer.Select), admits aggregates computed while answering queries,
// and periodically revises the cached set from access counts
// (Cache.Revise in cache.go).

// EmpiricalDist builds a query-cardinality distribution from observed
// cardinalities. Weights are smoothed within power-of-two buckets (the
// granularity the signature tree cares about) so cardinalities near an
// observed one are not assigned zero probability, plus a vanishing
// floor that keeps the distribution proper.
func EmpiricalDist(samples []int, n int) (Dist, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("sigcache: N must be a power of two, got %d", n)
	}
	counts := make(map[int]float64, len(samples))
	bucketSum := make(map[int]float64)
	kept := 0
	for _, q := range samples {
		if q >= 1 && q <= n {
			counts[q]++
			bucketSum[bucket(q)]++
			kept++
		}
	}
	if kept == 0 {
		return nil, fmt.Errorf("sigcache: no in-range samples")
	}
	return func(q int) float64 {
		if q < 1 || q > n {
			return 0
		}
		// A quarter of each bucket's mass is spread uniformly over the
		// bucket's width, so smoothing never outweighs the real counts.
		b := bucket(q)
		width := 1 << b
		if b > 0 {
			width = 1 << (b - 1)
		}
		return counts[q] + bucketSum[b]/(4*float64(width)) + 1e-9
	}, nil
}

func bucket(q int) int {
	b := 0
	for q > 1 {
		q >>= 1
		b++
	}
	return b
}

// AutoAdmit makes the cache admit aggregates it computes while covering
// queries, for aligned blocks at or above minLevel — §4.2's "additional
// aggregate signatures that are generated to prove the query answers
// are added to the cache". Admitted entries participate in access
// counting and are pruned by Revise. Pass minLevel <= 0 to disable.
func (c *Cache) AutoAdmit(minLevel int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frontier.SetAdmitLevel(minLevel)
}
