// Package sigcache implements SigCache (Section 4): selective caching of
// aggregate signatures over the conceptual binary signature tree of a
// relation, to cut the query server's proof-construction cost.
//
// The analysis half (this file) computes, for every tree node Ti,j, the
// probability P(Ti,j) that a uniformly-placed range query of random
// cardinality derives its aggregate from that node (§4.1's ξ formulas),
// and runs Algorithm 1's greedy utility selection with the mirror-node
// optimization. The naive evaluation of P is O(N) per node — infeasible
// at N=10^6 — so we reduce each node to O(1) prefix-sum lookups over the
// q-ranges where ξ is constant or linear in q.
package sigcache

import (
	"fmt"
	"math"
	"sort"

	"authdb/internal/aggtree"
)

// Node identifies a signature-tree node Ti,j: Level i (0 = leaves,
// log2(N) = root) and position j within the level. It is an alias of
// aggtree.Node, the structure that now owns the tree mechanics.
type Node = aggtree.Node

// Dist is a query-cardinality distribution: Dist(q) is proportional to
// the probability that a query has cardinality q, for 1 <= q <= N.
type Dist func(q int) float64

// Harmonic is the paper's skewed distribution P(q) = (1/q) / H_N,
// favouring short queries.
func Harmonic(q int) float64 { return 1 / float64(q) }

// Uniform makes all cardinalities equally likely.
func Uniform(q int) float64 { return 1 }

// Analyzer evaluates node-usage probabilities for a relation of N
// records (N a power of two) under a cardinality distribution.
type Analyzer struct {
	n      int
	levels int       // log2(n)
	p      []float64 // p[q], normalized, 1-indexed
	s0     []float64 // s0[q] = sum_{t<=q} p[t]/(n-t+1)
	s1     []float64 // s1[q] = sum_{t<=q} t*p[t]/(n-t+1)
	base   float64   // expected ops without caching: sum (q-1) p[q]
}

// NewAnalyzer builds the prefix sums for a relation of n records
// (n must be a power of two, matching §4.1's simplifying assumption).
func NewAnalyzer(n int, dist Dist) (*Analyzer, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("sigcache: N must be a power of two >= 2, got %d", n)
	}
	a := &Analyzer{
		n:      n,
		levels: int(math.Round(math.Log2(float64(n)))),
		p:      make([]float64, n+1),
		s0:     make([]float64, n+1),
		s1:     make([]float64, n+1),
	}
	var total float64
	for q := 1; q <= n; q++ {
		v := dist(q)
		if v < 0 {
			return nil, fmt.Errorf("sigcache: negative weight at q=%d", q)
		}
		a.p[q] = v
		total += v
	}
	if total == 0 {
		return nil, fmt.Errorf("sigcache: zero distribution")
	}
	for q := 1; q <= n; q++ {
		a.p[q] /= total
		w := a.p[q] / float64(n-q+1)
		a.s0[q] = a.s0[q-1] + w
		a.s1[q] = a.s1[q-1] + float64(q)*w
		a.base += float64(q-1) * a.p[q]
	}
	return a, nil
}

// N returns the relation size.
func (a *Analyzer) N() int { return a.n }

// Levels returns log2(N), the root level.
func (a *Analyzer) Levels() int { return a.levels }

// BaseCost is the expected number of aggregation operations per query
// with no caching: Σ (q-1)·P(q) (line 6 of Algorithm 1).
func (a *Analyzer) BaseCost() float64 { return a.base }

// sum0 returns Σ_{q=lo..hi} p[q]/(n-q+1), clamped to [1, n].
func (a *Analyzer) sum0(lo, hi int) float64 {
	if lo < 1 {
		lo = 1
	}
	if hi > a.n {
		hi = a.n
	}
	if lo > hi {
		return 0
	}
	return a.s0[hi] - a.s0[lo-1]
}

// sum1 returns Σ_{q=lo..hi} q·p[q]/(n-q+1), clamped.
func (a *Analyzer) sum1(lo, hi int) float64 {
	if lo < 1 {
		lo = 1
	}
	if hi > a.n {
		hi = a.n
	}
	if lo > hi {
		return 0
	}
	return a.s1[hi] - a.s1[lo-1]
}

// Prob returns P(Ti,j) = Σ_q P(Ti,j | q)·P(q) with
// P(Ti,j | q) = ξ(Ti,j | q)/(N-q+1), evaluated in O(1) from the
// closed-form q-ranges of §4.1.
func (a *Analyzer) Prob(node Node) float64 {
	i, j := node.Level, node.Pos
	if i < 0 || i > a.levels {
		return 0
	}
	c := 1 << i          // 2^i
	J := int64(a.n) >> i // positions in this level
	if j < 0 || j >= J {
		return 0
	}
	var prob float64

	// Case A: 2^i <= q < 2^{i+1}. Interior nodes serve q-2^i+1 query
	// placements; edge nodes serve one.
	hiA := 2*c - 1
	if 0 < j && j < J-1 {
		// Σ (q - c + 1)·w(q) = sum1 + (1-c)·sum0
		prob += a.sum1(c, hiA) + float64(1-c)*a.sum0(c, hiA)
	} else {
		prob += a.sum0(c, hiA)
	}

	// Case B: q >= 2^{i+1}. The node serves 2^i placements while the
	// query is long enough to keep the node interior to its span, then a
	// linearly shrinking count, then none.
	if 2*c <= a.n {
		var aa int64 // the paper's threshold multiplier
		if j%2 == 1 {
			aa = J - j
		} else {
			aa = j + 1
		}
		if aa >= 2 {
			constHi := aa * int64(c)
			prob += float64(c) * a.sum0(2*c, int(constHi))
			linLo, linHi := constHi+1, (aa+1)*int64(c)-1
			// ξ = c + a·c - q on the linear stretch.
			prob += float64(int64(c)+constHi)*a.sum0(int(linLo), int(linHi)) -
				a.sum1(int(linLo), int(linHi))
		}
	}
	return prob
}

// Xi returns ξ(Ti,j | q), the number of cardinality-q queries whose
// aggregate derivation uses the node — the raw §4.1 formulas, used to
// cross-check Prob in tests.
func (a *Analyzer) Xi(node Node, q int) int64 {
	i, j := node.Level, node.Pos
	c := int64(1) << i
	J := int64(a.n) >> i
	qq := int64(q)
	switch {
	case qq < c:
		return 0
	case qq < 2*c:
		if 0 < j && j < J-1 {
			return qq - c + 1
		}
		return 1
	default:
		var aa int64
		if j%2 == 1 {
			aa = J - j
		} else {
			aa = j + 1
		}
		switch {
		case aa >= (qq+c-1)/c: // a >= ceil(q/c)
			return c
		case qq/c == aa && aa < (qq+c-1)/c:
			return c - qq + (qq/c)*c
		default:
			return 0
		}
	}
}

// ProbNaive evaluates P(Ti,j) by direct summation over q; O(N), used to
// validate the closed form in tests.
func (a *Analyzer) ProbNaive(node Node) float64 {
	var prob float64
	for q := 1; q <= a.n; q++ {
		prob += float64(a.Xi(node, q)) / float64(a.n-q+1) * a.p[q]
	}
	return prob
}

// Mirror returns the node's mirror Ti,{J-1-j}, which has identical
// probability, savings and utility by symmetry.
func (a *Analyzer) Mirror(node Node) Node {
	J := int64(a.n) >> node.Level
	return Node{Level: node.Level, Pos: J - 1 - node.Pos}
}

// Selection is the outcome of Algorithm 1.
type Selection struct {
	// Nodes lists the cached nodes in caching order (mirror pairs
	// adjacent; the self-mirrored root appears once).
	Nodes []Node
	// CostAfterPair[k] is the expected per-query aggregation cost after
	// the first k+1 pairs are cached; CostAfterPair[len-1] is the final
	// cost. BaseCost() is the zero-cache reference.
	CostAfterPair []float64
}

// Select runs Algorithm 1: nodes are ranked by initial utility
// u = P(Ti,j)·(2^i - 1); caching a node reduces its ancestors' savings;
// a candidate that would raise the expected cost (because cached
// ancestors lose more utility than the candidate adds) is discarded.
// Only the left half of each level is evaluated — mirrors are cached
// automatically. Selection stops after maxPairs cached pairs or when
// candidates are exhausted.
func (a *Analyzer) Select(maxPairs int) *Selection {
	type cand struct {
		node Node
		util float64
	}
	var cands []cand
	for i := 1; i <= a.levels; i++ {
		J := int64(a.n) >> i
		half := (J + 1) / 2
		c := float64(int64(1)<<i) - 1
		for j := int64(0); j < half; j++ {
			n := Node{Level: i, Pos: j}
			if u := a.Prob(n) * c; u > 0 {
				cands = append(cands, cand{n, u})
			}
		}
	}
	sort.Slice(cands, func(x, y int) bool { return cands[x].util > cands[y].util })

	savings := map[Node]float64{}
	getS := func(n Node) float64 {
		if s, ok := savings[n]; ok {
			return s
		}
		return float64(int64(1)<<n.Level) - 1
	}
	cached := map[Node]bool{}
	probMemo := map[Node]float64{}
	getP := func(n Node) float64 {
		if p, ok := probMemo[n]; ok {
			return p
		}
		p := a.Prob(n)
		probMemo[n] = p
		return p
	}
	ancestors := func(n Node) []Node {
		var out []Node
		for l, pos := n.Level+1, n.Pos>>1; l <= a.levels; l, pos = l+1, pos>>1 {
			out = append(out, Node{Level: l, Pos: pos})
		}
		return out
	}
	// tryCache applies the caching of one node and returns the utility
	// delta plus an undo closure.
	tryCache := func(n Node) (float64, func()) {
		s := getS(n)
		delta := getP(n) * s
		ancs := ancestors(n)
		for _, an := range ancs {
			if cached[an] {
				delta -= getP(an) * s
			}
			savings[an] = getS(an) - s
		}
		cached[n] = true
		return delta, func() {
			delete(cached, n)
			for _, an := range ancs {
				savings[an] = getS(an) + s
			}
		}
	}

	sel := &Selection{}
	sumU := 0.0
	for _, cd := range cands {
		if maxPairs > 0 && len(sel.CostAfterPair) >= maxPairs {
			break
		}
		if cached[cd.node] {
			continue
		}
		d1, undo1 := tryCache(cd.node)
		mirror := a.Mirror(cd.node)
		d2 := 0.0
		undo2 := func() {}
		if mirror != cd.node && !cached[mirror] {
			d2, undo2 = tryCache(mirror)
		}
		if d1+d2 <= 1e-18 {
			undo2()
			undo1()
			continue
		}
		sumU += d1 + d2
		sel.Nodes = append(sel.Nodes, cd.node)
		if mirror != cd.node {
			sel.Nodes = append(sel.Nodes, mirror)
		}
		sel.CostAfterPair = append(sel.CostAfterPair, a.base-sumU)
	}
	return sel
}
