package sigcache

import (
	"crypto/rand"
	"fmt"
	mrand "math/rand"
	"testing"

	"authdb/internal/digest"
	"authdb/internal/sigagg"
	"authdb/internal/sigagg/bas"
	"authdb/internal/sigagg/xortest"
)

func xorLeaves(t *testing.T, n int) (sigagg.Scheme, sigagg.PrivateKey, sigagg.PublicKey, []sigagg.Signature, [][]byte) {
	t.Helper()
	scheme := xortest.New()
	priv, pub, err := scheme.KeyGen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	leaves := make([]sigagg.Signature, n)
	digests := make([][]byte, n)
	for i := range leaves {
		d := digest.Sum([]byte(fmt.Sprintf("rec-%d", i)))
		digests[i] = d[:]
		leaves[i], err = scheme.Sign(priv, d[:])
		if err != nil {
			t.Fatal(err)
		}
	}
	return scheme, priv, pub, leaves, digests
}

func TestAggregateRangeMatchesDirect(t *testing.T) {
	scheme, _, pub, leaves, digests := xorLeaves(t, 64)
	c, err := NewCache(scheme, leaves, Eager)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int64{{0, 63}, {5, 37}, {0, 0}, {63, 63}, {31, 32}} {
		sig, _, err := c.AggregateRange(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if err := scheme.AggregateVerify(pub, digests[r[0]:r[1]+1], sig); err != nil {
			t.Fatalf("range [%d,%d]: %v", r[0], r[1], err)
		}
	}
}

func TestAggregateRangeWithBAS(t *testing.T) {
	scheme := bas.New(0)
	priv, pub, err := scheme.KeyGen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	leaves := make([]sigagg.Signature, n)
	digests := make([][]byte, n)
	for i := range leaves {
		d := digest.Sum([]byte(fmt.Sprintf("bas-%d", i)))
		digests[i] = d[:]
		leaves[i], _ = scheme.Sign(priv, d[:])
	}
	c, err := NewCache(scheme, leaves, Eager)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Pin([]Node{{Level: 2, Pos: 1}, {Level: 2, Pos: 2}}); err != nil {
		t.Fatal(err)
	}
	sig, _, err := c.AggregateRange(3, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := scheme.AggregateVerify(pub, digests[3:13], sig); err != nil {
		t.Fatalf("BAS cached aggregate invalid: %v", err)
	}
}

func TestCachedNodesReduceOps(t *testing.T) {
	scheme, _, _, leaves, _ := xorLeaves(t, 256)
	plain, _ := NewCache(scheme, leaves, Eager)
	cached, _ := NewCache(scheme, leaves, Eager)
	if err := cached.Pin([]Node{{Level: 6, Pos: 1}, {Level: 6, Pos: 2}}); err != nil {
		t.Fatal(err)
	}
	// A long range spanning T6,1's [64,127] block.
	_, opsPlain, _ := plain.AggregateRange(60, 130)
	_, opsCached, _ := cached.AggregateRange(60, 130)
	if opsCached >= opsPlain {
		t.Fatalf("cached ops %d not below plain %d", opsCached, opsPlain)
	}
	// Savings should be about 2^6-1 = 63 ops.
	if opsPlain-opsCached < 50 {
		t.Fatalf("savings = %d ops, want ~63", opsPlain-opsCached)
	}
	if cached.Stats().Hits == 0 {
		t.Fatal("cache hit not recorded")
	}
}

func TestOpsMatchModel(t *testing.T) {
	// Without caching, a q-leaf range costs exactly q-1 operations.
	scheme, _, _, leaves, _ := xorLeaves(t, 128)
	c, _ := NewCache(scheme, leaves, Eager)
	for _, r := range [][2]int64{{0, 0}, {10, 17}, {1, 126}, {0, 127}} {
		_, ops, err := c.AggregateRange(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if want := int(r[1] - r[0]); ops != want {
			t.Fatalf("range [%d,%d]: ops=%d, want %d", r[0], r[1], ops, want)
		}
	}
}

func TestUpdateLeafEager(t *testing.T) {
	scheme, priv, pub, leaves, digests := xorLeaves(t, 32)
	c, _ := NewCache(scheme, leaves, Eager)
	if err := c.Pin([]Node{{Level: 3, Pos: 0}, {Level: 4, Pos: 0}}); err != nil {
		t.Fatal(err)
	}
	d := digest.Sum([]byte("rec-5-v2"))
	newSig, _ := scheme.Sign(priv, d[:])
	ops, err := c.UpdateLeaf(5, newSig)
	if err != nil {
		t.Fatal(err)
	}
	// Two cached ancestors refreshed at 2 ops each.
	if ops != 4 {
		t.Fatalf("eager update ops = %d, want 4", ops)
	}
	digests[5] = d[:]
	sig, _, _ := c.AggregateRange(0, 7) // uses the refreshed T3,0
	if err := scheme.AggregateVerify(pub, digests[0:8], sig); err != nil {
		t.Fatalf("aggregate after eager update: %v", err)
	}
}

func TestUpdateLeafLazy(t *testing.T) {
	scheme, priv, pub, leaves, digests := xorLeaves(t, 32)
	c, _ := NewCache(scheme, leaves, Lazy)
	if err := c.Pin([]Node{{Level: 3, Pos: 0}}); err != nil {
		t.Fatal(err)
	}
	d := digest.Sum([]byte("rec-5-v2"))
	newSig, _ := scheme.Sign(priv, d[:])
	ops, err := c.UpdateLeaf(5, newSig)
	if err != nil {
		t.Fatal(err)
	}
	if ops != 0 {
		t.Fatalf("lazy update ops = %d, want 0", ops)
	}
	digests[5] = d[:]
	sig, qops, _ := c.AggregateRange(0, 7)
	if err := scheme.AggregateVerify(pub, digests[0:8], sig); err != nil {
		t.Fatalf("aggregate after lazy refresh: %v", err)
	}
	if qops < 2 {
		t.Fatalf("lazy refresh must charge the query, got %d ops", qops)
	}
}

func TestLazyCoalescesRepeatedUpdates(t *testing.T) {
	scheme, priv, _, leaves, _ := xorLeaves(t, 32)
	c, _ := NewCache(scheme, leaves, Lazy)
	c.Pin([]Node{{Level: 3, Pos: 0}})
	for v := 0; v < 5; v++ {
		d := digest.Sum([]byte(fmt.Sprintf("rec-5-v%d", v+2)))
		sig, _ := scheme.Sign(priv, d[:])
		if _, err := c.UpdateLeaf(5, sig); err != nil {
			t.Fatal(err)
		}
	}
	// Five updates to one leaf coalesce to a single remove/add pair; the
	// query range is fully covered by the cached node, so the only work
	// is the refresh.
	_, ops, err := c.AggregateRange(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ops != 2 {
		t.Fatalf("query ops = %d, want 2 (coalesced refresh only)", ops)
	}
}

func TestEagerRepeatedUpdatesCostMore(t *testing.T) {
	// §4.3/Fig. 10(b): under a high update ratio, eager maintenance
	// wastes work relative to lazy.
	scheme, priv, _, leaves, _ := xorLeaves(t, 64)
	eager, _ := NewCache(scheme, leaves, Eager)
	lazy, _ := NewCache(scheme, leaves, Lazy)
	nodes := []Node{{Level: 4, Pos: 0}, {Level: 4, Pos: 3}}
	eager.Pin(nodes)
	lazy.Pin(nodes)
	eager.ResetStats()
	lazy.ResetStats()
	for v := 0; v < 10; v++ {
		d := digest.Sum([]byte(fmt.Sprintf("w-%d", v)))
		sig, _ := scheme.Sign(priv, d[:])
		eager.UpdateLeaf(3, sig)
		lazy.UpdateLeaf(3, sig)
	}
	eager.AggregateRange(0, 15)
	lazy.AggregateRange(0, 15)
	e, l := eager.Stats(), lazy.Stats()
	totalE := e.QueryOps + e.RefreshOps
	totalL := l.QueryOps + l.RefreshOps
	if totalL >= totalE {
		t.Fatalf("lazy total %d not below eager %d under repeated updates", totalL, totalE)
	}
}

func TestPinUsesCachedDescendants(t *testing.T) {
	scheme, _, _, leaves, _ := xorLeaves(t, 64)
	c, _ := NewCache(scheme, leaves, Eager)
	if err := c.Pin([]Node{{Level: 4, Pos: 0}, {Level: 4, Pos: 1}}); err != nil {
		t.Fatal(err)
	}
	before := c.Stats().PinOps
	// T5,0 covers exactly T4,0 + T4,1: one combine op.
	if err := c.Pin([]Node{{Level: 5, Pos: 0}}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().PinOps - before; got != 1 {
		t.Fatalf("pin of parent cost %d ops, want 1", got)
	}
}

func TestPinRejectsBadNode(t *testing.T) {
	scheme, _, _, leaves, _ := xorLeaves(t, 16)
	c, _ := NewCache(scheme, leaves, Eager)
	if err := c.Pin([]Node{{Level: 9, Pos: 0}}); err == nil {
		t.Fatal("out-of-range level accepted")
	}
	if err := c.Pin([]Node{{Level: 2, Pos: 99}}); err == nil {
		t.Fatal("out-of-range pos accepted")
	}
}

func TestAggregateRangeBadArgs(t *testing.T) {
	scheme, _, _, leaves, _ := xorLeaves(t, 16)
	c, _ := NewCache(scheme, leaves, Eager)
	for _, r := range [][2]int64{{-1, 3}, {3, 16}, {5, 4}} {
		if _, _, err := c.AggregateRange(r[0], r[1]); err == nil {
			t.Fatalf("range [%d,%d] accepted", r[0], r[1])
		}
	}
	if _, err := c.UpdateLeaf(99, leaves[0]); err == nil {
		t.Fatal("out-of-range update accepted")
	}
}

func TestNewCacheRejectsBadLeafCount(t *testing.T) {
	scheme := xortest.New()
	if _, err := NewCache(scheme, make([]sigagg.Signature, 12), Eager); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
}

func TestReviseDropsColdNodes(t *testing.T) {
	scheme, _, _, leaves, _ := xorLeaves(t, 64)
	c, _ := NewCache(scheme, leaves, Eager)
	hot := Node{Level: 4, Pos: 1}
	cold := Node{Level: 4, Pos: 2}
	c.Pin([]Node{hot, cold})
	for i := 0; i < 10; i++ {
		c.AggregateRange(16, 31) // hits hot only
	}
	c.Revise(1, 0)
	if c.Len() != 1 {
		t.Fatalf("Len after Revise = %d, want 1", c.Len())
	}
	if _, ok := c.AccessCounts()[hot]; !ok {
		t.Fatal("hot node evicted")
	}
}

func TestEndToEndSelectionPlusRuntime(t *testing.T) {
	// Select nodes analytically, pin them, and confirm the measured mean
	// ops over a random workload drops accordingly.
	const n = 1 << 12
	a, err := NewAnalyzer(n, Uniform)
	if err != nil {
		t.Fatal(err)
	}
	sel := a.Select(8)
	scheme, _, _, leaves, _ := xorLeaves(t, n)
	plain, _ := NewCache(scheme, leaves, Eager)
	cached, _ := NewCache(scheme, leaves, Eager)
	if err := cached.Pin(sel.Nodes); err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(9))
	var opsPlain, opsCached int
	for i := 0; i < 300; i++ {
		q := rng.Int63n(n) + 1
		lo := rng.Int63n(int64(n) - q + 1)
		_, p, err := plain.AggregateRange(lo, lo+q-1)
		if err != nil {
			t.Fatal(err)
		}
		_, cc, err := cached.AggregateRange(lo, lo+q-1)
		if err != nil {
			t.Fatal(err)
		}
		opsPlain += p
		opsCached += cc
	}
	if opsCached >= opsPlain {
		t.Fatalf("cached ops %d not below plain %d", opsCached, opsPlain)
	}
	measured := 1 - float64(opsCached)/float64(opsPlain)
	predicted := 1 - sel.CostAfterPair[len(sel.CostAfterPair)-1]/a.BaseCost()
	if measured < predicted-0.25 {
		t.Fatalf("measured reduction %.2f far below predicted %.2f", measured, predicted)
	}
}
