package wire

import (
	"reflect"
	"testing"

	"authdb/internal/bloom"
	"authdb/internal/chain"
	"authdb/internal/core"
	"authdb/internal/freshness"
	"authdb/internal/join"
	"authdb/internal/projection"
	"authdb/internal/sigagg"
)

func TestPlanReqRoundTrip(t *testing.T) {
	rels := []RelSince{{Name: "outer", SinceSeq: 7}, {Name: "inner"}}
	for _, kind := range []byte{'J', 'P'} {
		buf, err := AppendPlanReq(nil, kind, []byte("plan-bytes"), rels)
		if err != nil {
			t.Fatal(err)
		}
		plan, got, err := DecodePlanReq(buf)
		if err != nil {
			t.Fatal(err)
		}
		if string(plan) != "plan-bytes" || !reflect.DeepEqual(got, rels) {
			t.Fatalf("kind %q: round trip %q %v", kind, plan, got)
		}
	}
	if _, err := AppendPlanReq(nil, 'Q', nil, nil); err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestCompositeRoundTrip(t *testing.T) {
	pf, err := bloom.BuildPartitioned([]int64{5, 10, 15, 20}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	c := &Composite{
		Outer: &chain.Answer{
			Lo: 1, Hi: 9,
			Records: []*chain.Record{{RID: 1, Key: 2, TS: 3, Attrs: [][]byte{[]byte("x")}}},
			Left:    chain.MinRef, Right: chain.MaxRef,
			Agg: sigagg.Signature("agg"),
		},
		Proj: &projection.Answer{
			AttrIdxs: []int{1},
			Rows:     []projection.Row{{RID: 1, TS: 3, Values: [][]byte{[]byte("v")}}},
			Agg:      sigagg.Signature("pagg"),
		},
		Join: &join.Answer{
			Method: join.BF, FilterTS: 77,
			Matches: []*chain.Answer{{
				Lo: 5, Hi: 5,
				Records: []*chain.Record{{RID: 9, Key: 5, TS: 1}},
				Left:    chain.MinRef, Right: chain.MaxRef,
				Agg: sigagg.Signature("m"),
			}},
			Unmatched: []join.UnmatchedProof{
				{RA: 6, Partition: &pf.Partitions[0], PartSig: sigagg.Signature("ps")},
				{RA: 7, Boundary: &chain.Answer{
					Lo: 7, Hi: 7,
					Anchor:     &chain.Record{RID: 9, Key: 5, TS: 1},
					AnchorLeft: chain.MinRef,
					Left:       chain.MinRef, Right: chain.MaxRef,
					Agg: sigagg.Signature("b"),
				}},
			},
		},
		Tails: []RelTail{
			{Rel: "inner", Summaries: []freshness.Summary{{Seq: 1, PeriodStart: 1, TS: 2, Compressed: []byte("c"), Sig: sigagg.Signature("s")}}},
			{Rel: "outer"},
		},
	}
	buf, err := AppendCompositeCore(GetBuffer(), c)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { PutBuffer(buf) }()
	buf = AppendRelTails(buf, c.Tails)
	got, err := DecodeComposite(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("composite round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
	// Truncation and trailing garbage both fail loudly.
	if _, err := DecodeComposite(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated composite accepted")
	}
	if _, err := DecodeComposite(append(append([]byte(nil), buf...), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestUpdateMsgSidebandRoundTrip(t *testing.T) {
	msg := &core.UpdateMsg{
		TS: 9,
		Upserts: []core.SignedRecord{
			{
				Rec:      &chain.Record{RID: 1, Key: 5, TS: 9},
				Sig:      sigagg.Signature("sig"),
				AttrVals: [][]byte{[]byte("a"), []byte("b")},
				AttrSigs: []sigagg.Signature{sigagg.Signature("s0"), sigagg.Signature("s1")},
			},
			{Rec: &chain.Record{RID: 2, Key: 6, TS: 9, Attrs: [][]byte{[]byte("full")}}, Sig: sigagg.Signature("sig2")},
		},
	}
	got, err := DecodeUpdateMsg(EncodeUpdateMsg(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("sideband round trip mismatch:\n got %+v\nwant %+v", got, msg)
	}
	if got.Upserts[0].AttrVals == nil || got.Upserts[1].AttrVals != nil {
		t.Fatal("sideband presence not preserved")
	}
}

func TestRelSumsReqRoundTrip(t *testing.T) {
	buf := AppendRelSumsReq(nil, "inner", 42, -1)
	rel, seq, ts, err := DecodeRelSumsReq(buf)
	if err != nil {
		t.Fatal(err)
	}
	if rel != "inner" || seq != 42 || ts != -1 {
		t.Fatalf("round trip %q %d %d", rel, seq, ts)
	}
}
