package wire

// Replication frames: an untrusted follower replica subscribes to the
// primary's dissemination feed and mirrors its serving state. The
// follower needs no trust — it re-serves owner-signed records and
// owner-certified summaries, and clients verify everything — so the
// feed carries no authentication of its own beyond the owner
// signatures already inside every record and summary.
//
//	'R'  follower -> primary   subscribe, resuming after a known LSN
//	'B'  primary  -> follower  bootstrap image (full server state + LSN)
//	'W'  primary  -> follower  one WAL record (LSN + UpdateMsg)
//	'H'  primary  -> follower  heartbeat carrying the primary's LSN
//
// A 'W' frame piggybacks the primary's current last LSN so a follower
// can expose its replication lag even while records stream; 'H' keeps
// the lag observable when the feed is idle.

import (
	"fmt"

	"authdb/internal/core"
	"authdb/internal/sigagg"
)

// ---- ReplSubReq (follower -> primary) ----

// AppendReplSubReq appends a replication subscription resuming after
// afterLSN (0 = from nothing; the primary decides whether to bootstrap
// a fresh image or tail its log).
func AppendReplSubReq(buf []byte, afterLSN uint64) []byte {
	w := &writer{buf: buf}
	w.u8(Version)
	w.u8('R')
	w.u64(afterLSN)
	return w.buf
}

// DecodeReplSubReq parses a replication subscription request.
func DecodeReplSubReq(data []byte) (uint64, error) {
	r := &reader{buf: data}
	if err := header(r, 'R'); err != nil {
		return 0, err
	}
	after, err := r.u64()
	if err != nil {
		return 0, err
	}
	return after, r.done()
}

// ---- Bootstrap (primary -> follower) ----

// AppendBootstrap appends a bootstrap image: the full serving state as
// of lsn. The follower installs it via core.QueryServer.Restore and
// resumes tailing from lsn.
func AppendBootstrap(buf []byte, lsn uint64, st *core.ServerState) []byte {
	w := &writer{buf: buf}
	w.u8(Version)
	w.u8('B')
	w.u64(lsn)
	w.u64(uint64(len(st.Records)))
	for _, sr := range st.Records {
		putRecord(w, sr.Rec)
		w.bytes(sr.Sig)
	}
	w.u64(uint64(len(st.Summaries)))
	for i := range st.Summaries {
		putSummary(w, &st.Summaries[i])
	}
	return w.buf
}

// DecodeBootstrap parses a bootstrap image.
func DecodeBootstrap(data []byte) (uint64, *core.ServerState, error) {
	r := &reader{buf: data}
	if err := header(r, 'B'); err != nil {
		return 0, nil, err
	}
	lsn, err := r.u64()
	if err != nil {
		return 0, nil, err
	}
	nRecs, err := r.u64()
	if err != nil {
		return 0, nil, err
	}
	if nRecs > maxLen {
		return 0, nil, fmt.Errorf("%w: record count %d", ErrCorrupt, nRecs)
	}
	st := &core.ServerState{}
	for i := uint64(0); i < nRecs; i++ {
		rec, err := getRecord(r)
		if err != nil {
			return 0, nil, err
		}
		sig, err := r.bytes()
		if err != nil {
			return 0, nil, err
		}
		st.Records = append(st.Records, core.SignedRecord{Rec: rec, Sig: sigagg.Signature(sig)})
	}
	nSums, err := r.u64()
	if err != nil {
		return 0, nil, err
	}
	if nSums > maxLen {
		return 0, nil, fmt.Errorf("%w: summary count %d", ErrCorrupt, nSums)
	}
	for i := uint64(0); i < nSums; i++ {
		s, err := getSummary(r)
		if err != nil {
			return 0, nil, err
		}
		st.Summaries = append(st.Summaries, s)
	}
	if err := r.done(); err != nil {
		return 0, nil, err
	}
	return lsn, st, nil
}

// ---- WalRecord (primary -> follower) ----

// AppendWalRecord appends one replicated WAL record: its LSN, the
// primary's last LSN at send time (for follower lag accounting), and
// the dissemination message encoded by AppendUpdateMsg — nested as a
// length-prefixed blob so the primary encodes once and fans the same
// bytes out to every subscriber.
func AppendWalRecord(buf []byte, lsn, primaryLSN uint64, msgData []byte) []byte {
	w := &writer{buf: buf}
	w.u8(Version)
	w.u8('W')
	w.u64(lsn)
	w.u64(primaryLSN)
	w.bytes(msgData)
	return w.buf
}

// DecodeWalRecord parses one replicated WAL record.
func DecodeWalRecord(data []byte) (lsn, primaryLSN uint64, msg *core.UpdateMsg, err error) {
	r := &reader{buf: data}
	if err = header(r, 'W'); err != nil {
		return 0, 0, nil, err
	}
	if lsn, err = r.u64(); err != nil {
		return 0, 0, nil, err
	}
	if primaryLSN, err = r.u64(); err != nil {
		return 0, 0, nil, err
	}
	body, err := r.bytes()
	if err != nil {
		return 0, 0, nil, err
	}
	if err = r.done(); err != nil {
		return 0, 0, nil, err
	}
	msg, err = DecodeUpdateMsg(body)
	if err != nil {
		return 0, 0, nil, err
	}
	return lsn, primaryLSN, msg, nil
}

// ---- ReplHeartbeat (primary -> follower) ----

// AppendReplHeartbeat appends an idle-feed heartbeat carrying the
// primary's last LSN.
func AppendReplHeartbeat(buf []byte, primaryLSN uint64) []byte {
	w := &writer{buf: buf}
	w.u8(Version)
	w.u8('H')
	w.u64(primaryLSN)
	return w.buf
}

// DecodeReplHeartbeat parses a replication heartbeat.
func DecodeReplHeartbeat(data []byte) (uint64, error) {
	r := &reader{buf: data}
	if err := header(r, 'H'); err != nil {
		return 0, err
	}
	lsn, err := r.u64()
	if err != nil {
		return 0, err
	}
	return lsn, r.done()
}
