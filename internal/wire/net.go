package wire

// The networked serving protocol: length-prefixed frames over a byte
// stream, each frame carrying one versioned message. Requests flow user
// → server ('Q' range query, 'S' summaries-since); responses flow back
// in request order ('A' answer, 'F' summary batch, 'E' error), so a
// client may pipeline any number of requests before reading. The answer
// payload is byte-identical to AppendAnswer's encoding — a server
// holding a cached entry writes those bytes straight to the socket.

import (
	"encoding/binary"
	"fmt"
	"io"

	"authdb/internal/freshness"
)

// DefaultMaxFrame bounds a frame's payload unless a tighter limit is
// configured: large enough for a multi-megabyte answer, small enough
// that a hostile peer cannot provoke unbounded allocation.
const DefaultMaxFrame = 64 << 20

// frameHeaderLen is the length prefix: a big-endian uint32 payload
// size.
const frameHeaderLen = 4

// WriteFrame writes payload as one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, reusing buf's storage when it is large
// enough, and returns the payload (valid until the next ReadFrame with
// the same buffer). max bounds the payload size (0 = DefaultMaxFrame).
// A connection closed cleanly between frames returns io.EOF; a close
// mid-frame returns io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, buf []byte, max int) ([]byte, error) {
	n, err := ReadFrameHeader(r, max)
	if err != nil {
		return nil, err
	}
	return ReadFramePayload(r, buf, n)
}

// ReadFrameHeader reads and validates one frame's length prefix,
// returning the payload size without allocating for it. Splitting the
// header from the payload read lets a transport arm a payload-
// completion deadline once bytes have started flowing — the idle wait
// for a header and the bounded receipt of an announced payload are
// different trust regimes (see server.NetConfig.ReadTimeout).
func ReadFrameHeader(r io.Reader, max int) (int, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, fmt.Errorf("%w: truncated frame header", ErrCorrupt)
		}
		return 0, err
	}
	// Bounds-check in uint64 before any int conversion: on 32-bit
	// platforms a hostile 2^31..2^32-1 length would wrap negative as an
	// int and sail past both checks into a slicing panic.
	if u := uint64(binary.BigEndian.Uint32(hdr[:])); u > uint64(max) {
		return 0, fmt.Errorf("%w: frame of %d bytes exceeds limit %d", ErrCorrupt, u, max)
	}
	return int(binary.BigEndian.Uint32(hdr[:])), nil
}

// ReadFramePayload reads the n payload bytes a validated header
// announced, reusing buf's storage when it is large enough. n must come
// from ReadFrameHeader: allocation is bounded by the header check, so a
// hostile length can never allocate past the configured cap.
func ReadFramePayload(r io.Reader, buf []byte, n int) ([]byte, error) {
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: truncated frame (%d bytes)", ErrCorrupt, n)
		}
		return nil, err
	}
	return buf, nil
}

// Kind peeks at a message's kind byte after validating the version, so
// a receiver can dispatch before committing to a full decode.
func Kind(data []byte) (byte, error) {
	if len(data) < 2 {
		return 0, fmt.Errorf("%w: short message (%d bytes)", ErrCorrupt, len(data))
	}
	if data[0] != Version {
		return 0, fmt.Errorf("%w: version %d, want %d", ErrCorrupt, data[0], Version)
	}
	return data[1], nil
}

// ---- QueryReq (user -> server) ----

// AppendQueryReq appends a range-query request for [lo, hi]. sinceSeq
// advertises the highest certified summary sequence the session already
// holds (0 = none): the server attaches only the summaries published
// after it to the answer, so a long-lived session stops re-downloading
// the whole summary history with every response.
func AppendQueryReq(buf []byte, lo, hi int64, sinceSeq uint64) []byte {
	w := &writer{buf: buf}
	w.u8(Version)
	w.u8('Q')
	w.i64(lo)
	w.i64(hi)
	w.u64(sinceSeq)
	return w.buf
}

// DecodeQueryReq parses a range-query request.
func DecodeQueryReq(data []byte) (lo, hi int64, sinceSeq uint64, err error) {
	r := &reader{buf: data}
	if err = header(r, 'Q'); err != nil {
		return 0, 0, 0, err
	}
	if lo, err = r.i64(); err != nil {
		return 0, 0, 0, err
	}
	if hi, err = r.i64(); err != nil {
		return 0, 0, 0, err
	}
	if sinceSeq, err = r.u64(); err != nil {
		return 0, 0, 0, err
	}
	return lo, hi, sinceSeq, r.done()
}

// ---- SummariesReq (user -> server) ----

// AppendSummariesReq appends a request for the certified summaries
// published at or after since (the log-in back-history fetch of §3.1).
func AppendSummariesReq(buf []byte, since int64) []byte {
	w := &writer{buf: buf}
	w.u8(Version)
	w.u8('S')
	w.i64(since)
	return w.buf
}

// DecodeSummariesReq parses a summaries-since request.
func DecodeSummariesReq(data []byte) (int64, error) {
	r := &reader{buf: data}
	if err := header(r, 'S'); err != nil {
		return 0, err
	}
	since, err := r.i64()
	if err != nil {
		return 0, err
	}
	return since, r.done()
}

// ---- Summaries (server -> user) ----

// AppendSummaries appends a batch of certified summaries (the response
// to a SummariesReq).
func AppendSummaries(buf []byte, sums []freshness.Summary) []byte {
	w := &writer{buf: buf}
	w.u8(Version)
	w.u8('F')
	w.u64(uint64(len(sums)))
	for i := range sums {
		putSummary(w, &sums[i])
	}
	return w.buf
}

// DecodeSummaries parses a summary batch.
func DecodeSummaries(data []byte) ([]freshness.Summary, error) {
	r := &reader{buf: data}
	if err := header(r, 'F'); err != nil {
		return nil, err
	}
	n, err := r.u64()
	if err != nil {
		return nil, err
	}
	if n > maxLen {
		return nil, fmt.Errorf("%w: summary count %d", ErrCorrupt, n)
	}
	var sums []freshness.Summary
	for i := uint64(0); i < n; i++ {
		s, err := getSummary(r)
		if err != nil {
			return nil, err
		}
		sums = append(sums, s)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return sums, nil
}

// ---- Error (server -> user) ----

// Error codes carried in 'E' responses: a machine-readable byte ahead
// of the human-readable message, so clients can choose a reaction
// (back off, give up, report) without parsing prose.
const (
	// ErrCodeGeneric is a request-level failure (bad range, decode
	// error): retrying the same request will fail the same way.
	ErrCodeGeneric = byte(0)
	// ErrCodeOverloaded is admission control shedding load: the request
	// was rejected before any work, and a retry after backoff is the
	// intended response (reject-fast beats queue collapse).
	ErrCodeOverloaded = byte(1)
	// ErrCodeBadFrame means the request frame or payload did not parse.
	// A client that knows it sent a well-formed request may treat this
	// as in-flight corruption and resend over a fresh connection.
	ErrCodeBadFrame = byte(2)
)

// AppendError appends a generic error response carrying msg.
func AppendError(buf []byte, msg string) []byte {
	return AppendErrorCode(buf, ErrCodeGeneric, msg)
}

// AppendErrorCode appends an error response with an explicit code.
func AppendErrorCode(buf []byte, code byte, msg string) []byte {
	w := &writer{buf: buf}
	w.u8(Version)
	w.u8('E')
	w.u8(code)
	w.bytes([]byte(msg))
	return w.buf
}

// DecodeError parses an error response into its message, discarding
// the code; callers that react to codes use DecodeErrorCode.
func DecodeError(data []byte) (string, error) {
	_, msg, err := DecodeErrorCode(data)
	return msg, err
}

// DecodeErrorCode parses an error response into its code and message.
func DecodeErrorCode(data []byte) (byte, string, error) {
	r := &reader{buf: data}
	if err := header(r, 'E'); err != nil {
		return 0, "", err
	}
	code, err := r.u8()
	if err != nil {
		return 0, "", err
	}
	msg, err := r.bytes()
	if err != nil {
		return 0, "", err
	}
	if err := r.done(); err != nil {
		return 0, "", err
	}
	return code, string(msg), nil
}
