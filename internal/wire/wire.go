// Package wire provides the binary encoding of the protocol messages
// that cross trust boundaries: the DataAggregator's dissemination
// messages (DA → query server), and the server's answers (server →
// user). The format is deliberately simple — a version byte, then
// length-prefixed fields in fixed order — so a verifier implementation
// in any language can parse it, and so corrupted or truncated inputs
// fail loudly before any cryptographic check.
//
// Encoding never allocates surprises into the decoded structures:
// decoded byte slices are copies, so a received buffer can be reused.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"authdb/internal/chain"
	"authdb/internal/core"
	"authdb/internal/freshness"
	"authdb/internal/sigagg"
)

// bufPool recycles encode buffers so steady-state senders allocate
// nothing per message. Buffers that grew beyond maxPooled are dropped
// rather than pinned in the pool.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

const maxPooled = 1 << 20

// GetBuffer returns an empty pooled buffer for the Append* encoders.
func GetBuffer() []byte {
	return (*bufPool.Get().(*[]byte))[:0]
}

// PutBuffer recycles a buffer previously returned by GetBuffer or an
// Append* encoder. The caller must not use buf afterwards.
func PutBuffer(buf []byte) {
	if cap(buf) == 0 || cap(buf) > maxPooled {
		return
	}
	buf = buf[:0]
	bufPool.Put(&buf)
}

// Version is the wire-format version byte.
const Version = 1

// ErrCorrupt is returned (wrapped) for any malformed input.
var ErrCorrupt = errors.New("wire: corrupt message")

// maxLen bounds any single length prefix, guarding against allocation
// bombs from hostile servers.
const maxLen = 1 << 28

type writer struct{ buf []byte }

func (w *writer) u8(v byte)    { w.buf = append(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) bytes(p []byte) {
	w.u64(uint64(len(p)))
	w.buf = append(w.buf, p...)
}

type reader struct {
	buf []byte
	off int
}

func (r *reader) u8() (byte, error) {
	if r.off+1 > len(r.buf) {
		return 0, fmt.Errorf("%w: truncated byte", ErrCorrupt)
	}
	v := r.buf[r.off]
	r.off++
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.off+8 > len(r.buf) {
		return 0, fmt.Errorf("%w: truncated integer", ErrCorrupt)
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) i64() (int64, error) {
	v, err := r.u64()
	return int64(v), err
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u64()
	if err != nil {
		return nil, err
	}
	if n > maxLen {
		return nil, fmt.Errorf("%w: length %d exceeds limit", ErrCorrupt, n)
	}
	if r.off+int(n) > len(r.buf) {
		return nil, fmt.Errorf("%w: truncated field (%d bytes)", ErrCorrupt, n)
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+int(n)])
	r.off += int(n)
	return out, nil
}

func (r *reader) done() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.buf)-r.off)
	}
	return nil
}

// ---- records ----

func putRecord(w *writer, rec *chain.Record) {
	w.u64(rec.RID)
	w.i64(rec.Key)
	w.i64(rec.TS)
	w.u64(uint64(len(rec.Attrs)))
	for _, a := range rec.Attrs {
		w.bytes(a)
	}
}

func getRecord(r *reader) (*chain.Record, error) {
	rec := &chain.Record{}
	var err error
	if rec.RID, err = r.u64(); err != nil {
		return nil, err
	}
	if rec.Key, err = r.i64(); err != nil {
		return nil, err
	}
	if rec.TS, err = r.i64(); err != nil {
		return nil, err
	}
	nAttrs, err := r.u64()
	if err != nil {
		return nil, err
	}
	if nAttrs > maxLen {
		return nil, fmt.Errorf("%w: attr count %d", ErrCorrupt, nAttrs)
	}
	for i := uint64(0); i < nAttrs; i++ {
		a, err := r.bytes()
		if err != nil {
			return nil, err
		}
		rec.Attrs = append(rec.Attrs, a)
	}
	return rec, nil
}

func putRef(w *writer, ref chain.Ref) {
	w.i64(ref.Key)
	w.u64(ref.RID)
}

func getRef(r *reader) (chain.Ref, error) {
	key, err := r.i64()
	if err != nil {
		return chain.Ref{}, err
	}
	rid, err := r.u64()
	if err != nil {
		return chain.Ref{}, err
	}
	return chain.Ref{Key: key, RID: rid}, nil
}

// ---- summaries ----

func putSummary(w *writer, s *freshness.Summary) {
	w.u64(s.Seq)
	w.i64(s.PeriodStart)
	w.i64(s.TS)
	w.bytes(s.Compressed)
	w.bytes(s.Sig)
}

func getSummary(r *reader) (freshness.Summary, error) {
	var s freshness.Summary
	var err error
	if s.Seq, err = r.u64(); err != nil {
		return s, err
	}
	if s.PeriodStart, err = r.i64(); err != nil {
		return s, err
	}
	if s.TS, err = r.i64(); err != nil {
		return s, err
	}
	if s.Compressed, err = r.bytes(); err != nil {
		return s, err
	}
	sig, err := r.bytes()
	if err != nil {
		return s, err
	}
	s.Sig = sigagg.Signature(sig)
	return s, nil
}

// ---- UpdateMsg (DA -> query server) ----

// EncodeUpdateMsg serializes a dissemination message into a fresh
// buffer. Hot paths should prefer AppendUpdateMsg with a pooled buffer.
func EncodeUpdateMsg(msg *core.UpdateMsg) []byte {
	return AppendUpdateMsg(make([]byte, 0, 256), msg)
}

// AppendUpdateMsg appends the encoding of msg to buf (obtained from
// GetBuffer to avoid per-message allocations) and returns the extended
// buffer.
func AppendUpdateMsg(buf []byte, msg *core.UpdateMsg) []byte {
	w := &writer{buf: buf}
	w.u8(Version)
	w.u8('U')
	w.i64(msg.TS)
	w.u64(uint64(len(msg.Upserts)))
	for _, sr := range msg.Upserts {
		putRecord(w, sr.Rec)
		w.bytes(sr.Sig)
		// Projection-mode sideband: the attribute values and per-slot
		// signatures of a stripped chained record (§3.4).
		if sr.AttrVals != nil || sr.AttrSigs != nil {
			w.u8(1)
			w.u64(uint64(len(sr.AttrVals)))
			for _, v := range sr.AttrVals {
				w.bytes(v)
			}
			w.u64(uint64(len(sr.AttrSigs)))
			for _, s := range sr.AttrSigs {
				w.bytes(s)
			}
		} else {
			w.u8(0)
		}
	}
	w.u64(uint64(len(msg.Deletes)))
	for _, rid := range msg.Deletes {
		w.u64(rid)
	}
	if msg.Summary != nil {
		w.u8(1)
		putSummary(w, msg.Summary)
	} else {
		w.u8(0)
	}
	return w.buf
}

// DecodeUpdateMsg parses a dissemination message.
func DecodeUpdateMsg(data []byte) (*core.UpdateMsg, error) {
	r := &reader{buf: data}
	if err := header(r, 'U'); err != nil {
		return nil, err
	}
	msg := &core.UpdateMsg{}
	var err error
	if msg.TS, err = r.i64(); err != nil {
		return nil, err
	}
	nUp, err := r.u64()
	if err != nil {
		return nil, err
	}
	if nUp > maxLen {
		return nil, fmt.Errorf("%w: upsert count %d", ErrCorrupt, nUp)
	}
	for i := uint64(0); i < nUp; i++ {
		rec, err := getRecord(r)
		if err != nil {
			return nil, err
		}
		sig, err := r.bytes()
		if err != nil {
			return nil, err
		}
		sr := core.SignedRecord{Rec: rec, Sig: sigagg.Signature(sig)}
		hasSide, err := r.u8()
		if err != nil {
			return nil, err
		}
		switch hasSide {
		case 1:
			nv, err := r.u64()
			if err != nil {
				return nil, err
			}
			if nv > maxLen {
				return nil, fmt.Errorf("%w: sideband value count %d", ErrCorrupt, nv)
			}
			sr.AttrVals = make([][]byte, 0, nv)
			for j := uint64(0); j < nv; j++ {
				v, err := r.bytes()
				if err != nil {
					return nil, err
				}
				sr.AttrVals = append(sr.AttrVals, v)
			}
			ns, err := r.u64()
			if err != nil {
				return nil, err
			}
			if ns > maxLen {
				return nil, fmt.Errorf("%w: sideband signature count %d", ErrCorrupt, ns)
			}
			sr.AttrSigs = make([]sigagg.Signature, 0, ns)
			for j := uint64(0); j < ns; j++ {
				s, err := r.bytes()
				if err != nil {
					return nil, err
				}
				sr.AttrSigs = append(sr.AttrSigs, sigagg.Signature(s))
			}
		case 0:
		default:
			return nil, fmt.Errorf("%w: bad sideband flag %d", ErrCorrupt, hasSide)
		}
		msg.Upserts = append(msg.Upserts, sr)
	}
	nDel, err := r.u64()
	if err != nil {
		return nil, err
	}
	if nDel > maxLen {
		return nil, fmt.Errorf("%w: delete count %d", ErrCorrupt, nDel)
	}
	for i := uint64(0); i < nDel; i++ {
		rid, err := r.u64()
		if err != nil {
			return nil, err
		}
		msg.Deletes = append(msg.Deletes, rid)
	}
	hasSummary, err := r.u8()
	if err != nil {
		return nil, err
	}
	if hasSummary == 1 {
		s, err := getSummary(r)
		if err != nil {
			return nil, err
		}
		msg.Summary = &s
	} else if hasSummary != 0 {
		return nil, fmt.Errorf("%w: bad summary flag %d", ErrCorrupt, hasSummary)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return msg, nil
}

// ---- Answer (query server -> user) ----

// EncodeAnswer serializes a verifiable query answer into a fresh
// buffer. Hot paths should prefer AppendAnswer with a pooled buffer.
func EncodeAnswer(ans *core.Answer) ([]byte, error) {
	return AppendAnswer(make([]byte, 0, 512), ans)
}

// AppendAnswer appends the encoding of ans to buf (obtained from
// GetBuffer to avoid per-answer allocations) and returns the extended
// buffer. On error nothing has been appended and the caller still owns
// buf — a pooled buffer must then be recycled by the caller (exactly
// once; see server.Codec for the canonical error path).
//
// The encoding is the answer core followed by the summary tail, so a
// serving layer can also compose the identical frame from a cached
// AppendAnswerCore encoding plus a per-client AppendSummaryTail.
func AppendAnswer(buf []byte, ans *core.Answer) ([]byte, error) {
	out, err := AppendAnswerCore(buf, ans)
	if err != nil {
		return nil, err
	}
	return AppendSummaryTail(out, ans.Summaries), nil
}

// AppendAnswerCore appends the summary-free prefix of an answer's
// encoding: everything through the aggregate, with no summary section.
// The result is NOT a complete 'A' message — DecodeAnswer requires the
// summary tail — but it is cache-stable: the bytes depend only on the
// answered records, so the answer cache stores exactly this prefix and
// the serving layer appends each client's summary delta at response
// time.
func AppendAnswerCore(buf []byte, ans *core.Answer) ([]byte, error) {
	if ans == nil || ans.Chain == nil {
		return nil, fmt.Errorf("wire: nil answer")
	}
	w := &writer{buf: buf}
	w.u8(Version)
	w.u8('A')
	putAnswerBody(w, ans.Chain)
	return w.buf, nil
}

// putAnswerBody encodes the chained-answer section shared by 'A'
// answers and the sub-answers of a composite ('C') message: range,
// records, boundary references, optional anchor, aggregate.
func putAnswerBody(w *writer, ca *chain.Answer) {
	w.i64(ca.Lo)
	w.i64(ca.Hi)
	w.u64(uint64(len(ca.Records)))
	for _, rec := range ca.Records {
		putRecord(w, rec)
	}
	putRef(w, ca.Left)
	putRef(w, ca.Right)
	if ca.Anchor != nil {
		w.u8(1)
		putRecord(w, ca.Anchor)
		putRef(w, ca.AnchorLeft)
	} else {
		w.u8(0)
	}
	w.bytes(ca.Agg)
}

// getAnswerBody decodes what putAnswerBody wrote.
func getAnswerBody(r *reader) (*chain.Answer, error) {
	ca := &chain.Answer{}
	var err error
	if ca.Lo, err = r.i64(); err != nil {
		return nil, err
	}
	if ca.Hi, err = r.i64(); err != nil {
		return nil, err
	}
	nRecs, err := r.u64()
	if err != nil {
		return nil, err
	}
	if nRecs > maxLen {
		return nil, fmt.Errorf("%w: record count %d", ErrCorrupt, nRecs)
	}
	for i := uint64(0); i < nRecs; i++ {
		rec, err := getRecord(r)
		if err != nil {
			return nil, err
		}
		ca.Records = append(ca.Records, rec)
	}
	if ca.Left, err = getRef(r); err != nil {
		return nil, err
	}
	if ca.Right, err = getRef(r); err != nil {
		return nil, err
	}
	hasAnchor, err := r.u8()
	if err != nil {
		return nil, err
	}
	switch hasAnchor {
	case 1:
		if ca.Anchor, err = getRecord(r); err != nil {
			return nil, err
		}
		if ca.AnchorLeft, err = getRef(r); err != nil {
			return nil, err
		}
	case 0:
	default:
		return nil, fmt.Errorf("%w: bad anchor flag %d", ErrCorrupt, hasAnchor)
	}
	agg, err := r.bytes()
	if err != nil {
		return nil, err
	}
	ca.Agg = sigagg.Signature(agg)
	return ca, nil
}

// AppendSummaryTail appends an answer encoding's summary section: the
// count, then each certified summary. AppendAnswerCore bytes followed by
// AppendSummaryTail bytes form exactly one complete 'A' message.
func AppendSummaryTail(buf []byte, sums []freshness.Summary) []byte {
	w := &writer{buf: buf}
	w.u64(uint64(len(sums)))
	for i := range sums {
		putSummary(w, &sums[i])
	}
	return w.buf
}

// DecodeAnswer parses a verifiable query answer.
func DecodeAnswer(data []byte) (*core.Answer, error) {
	r := &reader{buf: data}
	if err := header(r, 'A'); err != nil {
		return nil, err
	}
	ca, err := getAnswerBody(r)
	if err != nil {
		return nil, err
	}
	ans := &core.Answer{Chain: ca}
	nSums, err := r.u64()
	if err != nil {
		return nil, err
	}
	if nSums > maxLen {
		return nil, fmt.Errorf("%w: summary count %d", ErrCorrupt, nSums)
	}
	for i := uint64(0); i < nSums; i++ {
		s, err := getSummary(r)
		if err != nil {
			return nil, err
		}
		ans.Summaries = append(ans.Summaries, s)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return ans, nil
}

func header(r *reader, kind byte) error {
	v, err := r.u8()
	if err != nil {
		return err
	}
	if v != Version {
		return fmt.Errorf("%w: version %d, want %d", ErrCorrupt, v, Version)
	}
	k, err := r.u8()
	if err != nil {
		return err
	}
	if k != kind {
		return fmt.Errorf("%w: message kind %q, want %q", ErrCorrupt, k, kind)
	}
	return nil
}
