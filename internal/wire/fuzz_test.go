package wire

// Fuzz targets for every decoder that faces untrusted bytes. The seed
// corpus (valid encodings plus systematic mutations) runs as normal
// tests in CI — `go test` executes every f.Add seed without -fuzz — so
// the no-panic and bounded-allocation guarantees are regression-checked
// on every push, and `go test -fuzz=Fuzz... ./internal/wire/` explores
// further locally.

import (
	"bytes"
	"testing"

	"authdb/internal/freshness"
)

// seedFrames returns valid wire encodings to anchor the corpora.
func seedFrames(t testing.TB) [][]byte {
	t.Helper()
	sys := system(t, 30)
	closeMsg, err := sys.DA.ClosePeriod(1_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Deliver(closeMsg); err != nil {
		t.Fatal(err)
	}
	ans, err := sys.QS.Query(50, 200)
	if err != nil {
		t.Fatal(err)
	}
	ansBytes, err := EncodeAnswer(ans)
	if err != nil {
		t.Fatal(err)
	}
	sums := sys.QS.SummariesSince(0)
	return [][]byte{
		ansBytes,
		EncodeUpdateMsg(closeMsg),
		AppendSummaries(nil, sums),
		AppendSummaries(nil, []freshness.Summary{}),
		AppendQueryReq(nil, -5, 1<<40, 9),
		AppendSummariesReq(nil, 123),
		AppendErrorCode(nil, ErrCodeOverloaded, "overloaded"),
		AppendError(nil, ""),
	}
}

// mutate adds systematic corruptions of each seed: single-bit flips at
// spread positions plus truncations, so the checked-in corpus already
// covers the classic torn/garbled-frame shapes.
func mutate(f *testing.F, seeds [][]byte) {
	for _, s := range seeds {
		f.Add(s)
		for i := 0; i < len(s); i += 1 + len(s)/16 {
			m := append([]byte(nil), s...)
			m[i] ^= 0x80
			f.Add(m)
		}
		for _, cut := range []int{0, 1, len(s) / 2, len(s) - 1} {
			if cut >= 0 && cut < len(s) {
				f.Add(append([]byte(nil), s[:cut]...))
			}
		}
	}
}

// FuzzReadFrame: framing must never panic and never allocate beyond the
// configured payload cap, whatever length the header claims.
func FuzzReadFrame(f *testing.F) {
	var framed [][]byte
	for _, s := range seedFrames(f) {
		var b bytes.Buffer
		if err := WriteFrame(&b, s); err != nil {
			f.Fatal(err)
		}
		framed = append(framed, b.Bytes())
	}
	// Hostile headers: oversized, maximal, zero, torn.
	framed = append(framed,
		[]byte{0xff, 0xff, 0xff, 0xff, 1},
		[]byte{0x00, 0x01, 0x00, 0x01},
		[]byte{0, 0, 0, 0},
		[]byte{0, 0},
	)
	mutate(f, framed)
	const max = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data), nil, max)
		if err != nil {
			return
		}
		if len(payload) > max || cap(payload) > max {
			t.Fatalf("frame allocation exceeded cap: len=%d cap=%d", len(payload), cap(payload))
		}
	})
}

// FuzzDecodeAnswer: the full answer decoder against arbitrary bytes.
func FuzzDecodeAnswer(f *testing.F) {
	mutate(f, seedFrames(f))
	f.Fuzz(func(t *testing.T, data []byte) {
		ans, err := DecodeAnswer(data)
		if err == nil && ans == nil {
			t.Fatal("nil answer without error")
		}
	})
}

// FuzzDecodeUpdateMsg: the dissemination-stream decoder (what a QS
// applies) against arbitrary bytes.
func FuzzDecodeUpdateMsg(f *testing.F) {
	mutate(f, seedFrames(f))
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeUpdateMsg(data)
		if err == nil && msg == nil {
			t.Fatal("nil message without error")
		}
	})
}

// FuzzDecodeSummaries: the certified-summary batch decoder against
// arbitrary bytes.
func FuzzDecodeSummaries(f *testing.F) {
	mutate(f, seedFrames(f))
	f.Fuzz(func(t *testing.T, data []byte) {
		DecodeSummaries(data)
	})
}

// FuzzDecodeRequests: the server-side request decoders plus the shared
// kind/error helpers — the bytes a hostile client controls.
func FuzzDecodeRequests(f *testing.F) {
	mutate(f, seedFrames(f))
	f.Fuzz(func(t *testing.T, data []byte) {
		Kind(data)
		DecodeQueryReq(data)
		DecodeSummariesReq(data)
		DecodeErrorCode(data)
	})
}
