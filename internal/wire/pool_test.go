package wire

import (
	"bytes"
	"testing"
)

func TestAppendEncodersMatchAndPoolRoundTrips(t *testing.T) {
	sys := system(t, 20)
	msg, err := sys.DA.Update(100, [][]byte{[]byte("pooled")}, 50)
	if err != nil {
		t.Fatal(err)
	}
	fresh := EncodeUpdateMsg(msg)
	buf := GetBuffer()
	pooled := AppendUpdateMsg(buf, msg)
	if !bytes.Equal(fresh, pooled) {
		t.Fatal("AppendUpdateMsg differs from EncodeUpdateMsg")
	}
	if _, err := DecodeUpdateMsg(pooled); err != nil {
		t.Fatalf("decode pooled encoding: %v", err)
	}
	PutBuffer(pooled)

	ans, err := sys.QS.Query(10, 120)
	if err != nil {
		t.Fatal(err)
	}
	freshA, err := EncodeAnswer(ans)
	if err != nil {
		t.Fatal(err)
	}
	buf2 := GetBuffer()
	pooledA, err := AppendAnswer(buf2, ans)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(freshA, pooledA) {
		t.Fatal("AppendAnswer differs from EncodeAnswer")
	}
	got, err := DecodeAnswer(pooledA)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Chain.Records) != len(ans.Chain.Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(got.Chain.Records), len(ans.Chain.Records))
	}
	PutBuffer(pooledA)

	// A recycled buffer must start empty and produce identical bytes.
	again := AppendUpdateMsg(GetBuffer(), msg)
	if !bytes.Equal(fresh, again) {
		t.Fatal("recycled buffer produced different encoding")
	}
	PutBuffer(again)
}

func BenchmarkAppendAnswerPooled(b *testing.B) {
	sys := system(b, 100)
	ans, err := sys.QS.Query(10, 500)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := AppendAnswer(GetBuffer(), ans)
		if err != nil {
			b.Fatal(err)
		}
		PutBuffer(buf)
	}
}

func BenchmarkEncodeAnswerFresh(b *testing.B) {
	sys := system(b, 100)
	ans, err := sys.QS.Query(10, 500)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeAnswer(ans); err != nil {
			b.Fatal(err)
		}
	}
}
