package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"authdb/internal/freshness"
	"authdb/internal/sigagg"
)

func TestFrameRoundTrip(t *testing.T) {
	var sock bytes.Buffer
	payloads := [][]byte{[]byte("one"), {}, bytes.Repeat([]byte{0xAB}, 70_000)}
	for _, p := range payloads {
		if err := WriteFrame(&sock, p); err != nil {
			t.Fatal(err)
		}
	}
	var buf []byte
	for i, want := range payloads {
		got, err := ReadFrame(&sock, buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
		buf = got
	}
	if _, err := ReadFrame(&sock, buf, 0); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestFrameLimitsAndTruncation(t *testing.T) {
	var sock bytes.Buffer
	if err := WriteFrame(&sock, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bytes.NewReader(sock.Bytes()), nil, 99); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized frame: %v, want ErrCorrupt", err)
	}
	// Truncated header and truncated payload both fail loudly.
	if _, err := ReadFrame(bytes.NewReader(sock.Bytes()[:2]), nil, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated header: %v, want ErrCorrupt", err)
	}
	if _, err := ReadFrame(bytes.NewReader(sock.Bytes()[:50]), nil, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated payload: %v, want ErrCorrupt", err)
	}
}

func TestQueryReqRoundTrip(t *testing.T) {
	data := AppendQueryReq(GetBuffer(), -5, 1<<40, 77)
	defer PutBuffer(data)
	if k, err := Kind(data); err != nil || k != 'Q' {
		t.Fatalf("kind=%q err=%v", k, err)
	}
	lo, hi, sinceSeq, err := DecodeQueryReq(data)
	if err != nil || lo != -5 || hi != 1<<40 || sinceSeq != 77 {
		t.Fatalf("lo=%d hi=%d sinceSeq=%d err=%v", lo, hi, sinceSeq, err)
	}
	if _, _, _, err := DecodeQueryReq(data[:len(data)-1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated request: %v", err)
	}
}

func TestSummariesReqRoundTrip(t *testing.T) {
	data := AppendSummariesReq(nil, 42)
	since, err := DecodeSummariesReq(data)
	if err != nil || since != 42 {
		t.Fatalf("since=%d err=%v", since, err)
	}
}

func TestSummariesRoundTrip(t *testing.T) {
	sums := []freshness.Summary{
		{Seq: 1, PeriodStart: 0, TS: 10, Compressed: []byte{1, 2}, Sig: sigagg.Signature("sig1")},
		{Seq: 2, PeriodStart: 10, TS: 20, Compressed: []byte{3}, Sig: sigagg.Signature("sig2")},
	}
	data := AppendSummaries(GetBuffer(), sums)
	defer PutBuffer(data)
	got, err := DecodeSummaries(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Seq != 1 || got[1].TS != 20 || string(got[1].Sig) != "sig2" {
		t.Fatalf("decoded %+v", got)
	}
	// Decoded fields must be copies, so the frame buffer can be reused.
	data[len(data)-1] ^= 0xFF
	if string(got[1].Sig) != "sig2" {
		t.Fatal("decoded summary aliases the frame buffer")
	}
	empty, err := DecodeSummaries(AppendSummaries(nil, nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty batch: %v %v", empty, err)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	data := AppendError(nil, "core: inverted range [9,3]")
	if k, _ := Kind(data); k != 'E' {
		t.Fatalf("kind=%q", k)
	}
	msg, err := DecodeError(data)
	if err != nil || msg != "core: inverted range [9,3]" {
		t.Fatalf("msg=%q err=%v", msg, err)
	}
}

func TestKindRejectsBadVersion(t *testing.T) {
	if _, err := Kind([]byte{99, 'Q'}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad version: %v", err)
	}
	if _, err := Kind([]byte{Version}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short message: %v", err)
	}
}
