package wire

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"authdb/internal/core"
	"authdb/internal/sigagg/bas"
	"authdb/internal/sigcache"
)

// system builds a loaded core.System for end-to-end wire tests.
func system(t testing.TB, n int) *core.System {
	t.Helper()
	sys, err := core.NewSystem(bas.New(0), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*core.Record, n)
	for i := range recs {
		recs[i] = &core.Record{
			Key:   int64(i+1) * 10,
			Attrs: [][]byte{[]byte(fmt.Sprintf("v-%d", i)), {0x00, 0xFF}},
		}
	}
	msg, err := sys.DA.Load(recs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Deliver(msg); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestUpdateMsgRoundTripThroughServer(t *testing.T) {
	// A second server fed only decoded wire bytes must end up in the
	// same state as the primary.
	sys := system(t, 50)
	mirror := core.NewQueryServer(sys.Scheme)

	feed := func(msg *core.UpdateMsg, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.QS.Apply(msg); err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeUpdateMsg(EncodeUpdateMsg(msg))
		if err != nil {
			t.Fatal(err)
		}
		if err := mirror.Apply(decoded); err != nil {
			t.Fatal(err)
		}
	}
	feed(sys.DA.Update(100, [][]byte{[]byte("v2")}, 100))
	feed(sys.DA.Insert(&core.Record{Key: 55, Attrs: [][]byte{[]byte("new")}}, 150))
	feed(sys.DA.Delete(200, 200))
	feed(sys.DA.ClosePeriod(1_000))

	if mirror.Len() == 0 {
		t.Fatal("mirror server received nothing")
	}
	// The mirrored upserts must verify under the DA's key.
	ans, err := mirror.Query(55, 55)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Chain.Records) != 1 || string(ans.Chain.Records[0].Attrs[0]) != "new" {
		t.Fatalf("mirror state wrong: %+v", ans.Chain.Records)
	}
}

func TestUpdateMsgRoundTripExact(t *testing.T) {
	sys := system(t, 10)
	msg, err := sys.DA.Update(50, [][]byte{[]byte("x"), nil, {1, 2, 3}}, 99)
	if err != nil {
		t.Fatal(err)
	}
	closeMsg, err := sys.DA.ClosePeriod(1_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*core.UpdateMsg{msg, closeMsg} {
		got, err := DecodeUpdateMsg(EncodeUpdateMsg(m))
		if err != nil {
			t.Fatal(err)
		}
		if got.TS != m.TS || len(got.Upserts) != len(m.Upserts) || len(got.Deletes) != len(m.Deletes) {
			t.Fatalf("shape mismatch: %+v vs %+v", got, m)
		}
		for i := range m.Upserts {
			a, b := got.Upserts[i], m.Upserts[i]
			if a.Rec.RID != b.Rec.RID || a.Rec.Key != b.Rec.Key || a.Rec.TS != b.Rec.TS {
				t.Fatal("record fields lost")
			}
			if string(a.Sig) != string(b.Sig) {
				t.Fatal("signature lost")
			}
			if len(a.Rec.Attrs) != len(b.Rec.Attrs) {
				t.Fatal("attrs lost")
			}
		}
		if (m.Summary == nil) != (got.Summary == nil) {
			t.Fatal("summary presence lost")
		}
		if m.Summary != nil {
			if got.Summary.Seq != m.Summary.Seq || string(got.Summary.Sig) != string(m.Summary.Sig) {
				t.Fatal("summary fields lost")
			}
		}
	}
}

func TestAnswerRoundTripVerifies(t *testing.T) {
	sys := system(t, 100)
	closeMsg, err := sys.DA.ClosePeriod(1_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Deliver(closeMsg); err != nil {
		t.Fatal(err)
	}
	for _, rng := range [][2]int64{{250, 500}, {1, 5} /* empty below domain */, {255, 256} /* empty gap */} {
		ans, err := sys.QS.Query(rng[0], rng[1])
		if err != nil {
			t.Fatal(err)
		}
		data, err := EncodeAnswer(ans)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeAnswer(data)
		if err != nil {
			t.Fatal(err)
		}
		// The decoded answer must verify exactly like the original.
		v := core.NewVerifier(sys.Scheme, sys.Pub, core.DefaultConfig())
		if _, err := v.VerifyAnswer(got, rng[0], rng[1], 1_100); err != nil {
			t.Fatalf("decoded answer for %v failed verification: %v", rng, err)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	sys := system(t, 20)
	ans, err := sys.QS.Query(50, 150)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeAnswer(ans)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every prefix must error, never panic.
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := DecodeAnswer(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage.
	if _, err := DecodeAnswer(append(append([]byte{}, data...), 0xAA)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Wrong kind and version.
	bad := append([]byte{}, data...)
	bad[1] = 'U'
	if _, err := DecodeAnswer(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatal("wrong kind accepted")
	}
	bad = append([]byte{}, data...)
	bad[0] = 99
	if _, err := DecodeAnswer(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatal("wrong version accepted")
	}
}

func TestDecodeRejectsLengthBombs(t *testing.T) {
	// A hostile length prefix must not trigger a huge allocation.
	w := []byte{Version, 'A'}
	w = append(w, make([]byte, 16)...) // lo, hi
	w = append(w, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := DecodeAnswer(w); !errors.Is(err, ErrCorrupt) {
		t.Fatal("length bomb accepted")
	}
	u := []byte{Version, 'U'}
	u = append(u, make([]byte, 8)...)
	u = append(u, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := DecodeUpdateMsg(u); !errors.Is(err, ErrCorrupt) {
		t.Fatal("length bomb accepted")
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	prop := func(data []byte) bool {
		// Any input either decodes or errors; panics fail the test run.
		DecodeAnswer(data)
		DecodeUpdateMsg(data)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWireWithSigCacheAnswers(t *testing.T) {
	sys := system(t, 256)
	if err := sys.QS.EnableSigCache(sigcache.Uniform, 4, sigcache.Eager); err != nil {
		t.Fatal(err)
	}
	ans, err := sys.QS.Query(10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeAnswer(ans)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAnswer(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Verifier.VerifyAnswer(got, 10, 2000, 100); err != nil {
		t.Fatal(err)
	}
}
