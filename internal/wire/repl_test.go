package wire

import (
	"bytes"
	"errors"
	"testing"

	"authdb/internal/chain"
	"authdb/internal/core"
	"authdb/internal/freshness"
	"authdb/internal/sigagg"
)

func TestReplSubReqRoundTrip(t *testing.T) {
	data := AppendReplSubReq(GetBuffer(), 12345)
	defer PutBuffer(data)
	if k, err := Kind(data); err != nil || k != 'R' {
		t.Fatalf("kind=%q err=%v", k, err)
	}
	after, err := DecodeReplSubReq(data)
	if err != nil || after != 12345 {
		t.Fatalf("after=%d err=%v", after, err)
	}
	if _, err := DecodeReplSubReq(data[:len(data)-1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated: %v, want ErrCorrupt", err)
	}
}

func TestBootstrapRoundTrip(t *testing.T) {
	st := &core.ServerState{
		Records: []core.SignedRecord{
			{Rec: &chain.Record{RID: 7, Key: 10, Attrs: [][]byte{{1}, {2}}, TS: 99}, Sig: sigagg.Signature("sig-a")},
			{Rec: &chain.Record{RID: 8, Key: 20, TS: 100}, Sig: sigagg.Signature("sig-b")},
		},
		Summaries: []freshness.Summary{
			{Seq: 1, PeriodStart: 0, TS: 50, Compressed: []byte{0x01}, Sig: sigagg.Signature("sum-sig")},
		},
	}
	data := AppendBootstrap(GetBuffer(), 42, st)
	defer PutBuffer(data)
	if k, err := Kind(data); err != nil || k != 'B' {
		t.Fatalf("kind=%q err=%v", k, err)
	}
	lsn, got, err := DecodeBootstrap(data)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 42 || len(got.Records) != 2 || len(got.Summaries) != 1 {
		t.Fatalf("lsn=%d records=%d summaries=%d", lsn, len(got.Records), len(got.Summaries))
	}
	if got.Records[0].Rec.Key != 10 || !bytes.Equal(got.Records[0].Sig, st.Records[0].Sig) {
		t.Fatalf("record 0 mismatch: %+v", got.Records[0])
	}
	if got.Summaries[0].Seq != 1 || !bytes.Equal(got.Summaries[0].Sig, st.Summaries[0].Sig) {
		t.Fatalf("summary mismatch: %+v", got.Summaries[0])
	}
	// Decoded state must not alias the frame buffer (a reusable read
	// buffer outlives the decode).
	data[len(data)-1] ^= 0xFF
	if !bytes.Equal(got.Summaries[0].Sig, st.Summaries[0].Sig) {
		t.Fatal("decoded summary aliases the frame buffer")
	}
	for i := 10; i < len(data); i++ {
		if _, _, err := DecodeBootstrap(data[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

func TestWalRecordRoundTrip(t *testing.T) {
	msg := &core.UpdateMsg{
		TS: 77,
		Upserts: []core.SignedRecord{
			{Rec: &chain.Record{RID: 1, Key: 5, TS: 77}, Sig: sigagg.Signature("s")},
		},
		Deletes: []uint64{9},
		Summary: &freshness.Summary{Seq: 3, PeriodStart: 60, TS: 70, Compressed: []byte{0x02}, Sig: sigagg.Signature("z")},
	}
	msgData := AppendUpdateMsg(GetBuffer(), msg)
	data := AppendWalRecord(GetBuffer(), 11, 15, msgData)
	PutBuffer(msgData)
	defer PutBuffer(data)
	if k, err := Kind(data); err != nil || k != 'W' {
		t.Fatalf("kind=%q err=%v", k, err)
	}
	lsn, primary, got, err := DecodeWalRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 11 || primary != 15 {
		t.Fatalf("lsn=%d primary=%d", lsn, primary)
	}
	if got.TS != 77 || len(got.Upserts) != 1 || len(got.Deletes) != 1 || got.Summary == nil || got.Summary.Seq != 3 {
		t.Fatalf("decoded msg mismatch: %+v", got)
	}
	// A garbled nested message must fail loudly, not decode partially.
	// Offset 26 is the nested UpdateMsg's version byte (2-byte header +
	// two u64 LSNs + the nested blob's u64 length prefix).
	bad := append([]byte(nil), data...)
	bad[26] ^= 0x01
	if _, _, _, err := DecodeWalRecord(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbled nested msg: %v, want ErrCorrupt", err)
	}
}

func TestReplHeartbeatRoundTrip(t *testing.T) {
	data := AppendReplHeartbeat(GetBuffer(), 1<<40)
	defer PutBuffer(data)
	if k, err := Kind(data); err != nil || k != 'H' {
		t.Fatalf("kind=%q err=%v", k, err)
	}
	lsn, err := DecodeReplHeartbeat(data)
	if err != nil || lsn != 1<<40 {
		t.Fatalf("lsn=%d err=%v", lsn, err)
	}
}
