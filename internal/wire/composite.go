// Composite-query wire messages: plan requests ('J' join / 'P'
// select-project), the composite verifiable-object answer ('C'), and the
// relation-scoped summary request ('T').
//
// Like plain answers, a 'C' message splits into a cacheable core — the
// plan's proof objects, whose bytes depend only on the touched data —
// and per-client relation tails (certified-summary deltas) appended at
// response time, so the answer cache stays valid across ρ-period closes
// on every relation the plan touched.
package wire

import (
	"fmt"

	"authdb/internal/bloom"
	"authdb/internal/chain"
	"authdb/internal/freshness"
	"authdb/internal/join"
	"authdb/internal/projection"
	"authdb/internal/sigagg"
)

// maxRels bounds the relations one request or answer may reference.
const maxRels = 1 << 10

// RelSince names a relation the client holds certified summaries for,
// through SinceSeq (0 = cold session).
type RelSince struct {
	Name     string
	SinceSeq uint64
}

// AppendPlanReq appends a plan request: kind 'J' (the plan contains a
// join) or 'P' (select-project only), the planner's canonical plan
// encoding, and the client's per-relation summary positions.
func AppendPlanReq(buf []byte, kind byte, plan []byte, rels []RelSince) ([]byte, error) {
	if kind != 'J' && kind != 'P' {
		return nil, fmt.Errorf("wire: bad plan request kind %q", kind)
	}
	w := &writer{buf: buf}
	w.u8(Version)
	w.u8(kind)
	w.bytes(plan)
	w.u64(uint64(len(rels)))
	for _, rs := range rels {
		w.bytes([]byte(rs.Name))
		w.u64(rs.SinceSeq)
	}
	return w.buf, nil
}

// DecodePlanReq parses a 'J' or 'P' plan request.
func DecodePlanReq(data []byte) (plan []byte, rels []RelSince, err error) {
	r := &reader{buf: data}
	v, err := r.u8()
	if err != nil {
		return nil, nil, err
	}
	if v != Version {
		return nil, nil, fmt.Errorf("%w: version %d, want %d", ErrCorrupt, v, Version)
	}
	k, err := r.u8()
	if err != nil {
		return nil, nil, err
	}
	if k != 'J' && k != 'P' {
		return nil, nil, fmt.Errorf("%w: message kind %q, want 'J' or 'P'", ErrCorrupt, k)
	}
	if plan, err = r.bytes(); err != nil {
		return nil, nil, err
	}
	n, err := r.u64()
	if err != nil {
		return nil, nil, err
	}
	if n > maxRels {
		return nil, nil, fmt.Errorf("%w: relation count %d", ErrCorrupt, n)
	}
	for i := uint64(0); i < n; i++ {
		name, err := r.bytes()
		if err != nil {
			return nil, nil, err
		}
		seq, err := r.u64()
		if err != nil {
			return nil, nil, err
		}
		rels = append(rels, RelSince{Name: string(name), SinceSeq: seq})
	}
	if err := r.done(); err != nil {
		return nil, nil, err
	}
	return plan, rels, nil
}

// RelTail is one relation's certified-summary delta in a composite
// answer.
type RelTail struct {
	Rel       string
	Summaries []freshness.Summary
}

// Composite is the verifiable object of one select-project-join plan:
// the outer relation's chained scan answer, the optional projection
// section (§3.4) and join section (§3.5), plus per-relation summary
// tails for freshness.
type Composite struct {
	Outer *chain.Answer
	Proj  *projection.Answer
	Join  *join.Answer
	Tails []RelTail
}

const (
	compFlagProj = 1 << 0
	compFlagJoin = 1 << 1
)

// AppendCompositeCore appends the cacheable prefix of a composite
// answer: everything except the per-relation summary tails. Core bytes
// followed by AppendRelTails bytes form one complete 'C' message.
func AppendCompositeCore(buf []byte, c *Composite) ([]byte, error) {
	if c == nil || c.Outer == nil {
		return nil, fmt.Errorf("wire: nil composite answer")
	}
	w := &writer{buf: buf}
	w.u8(Version)
	w.u8('C')
	putAnswerBody(w, c.Outer)
	var flags byte
	if c.Proj != nil {
		flags |= compFlagProj
	}
	if c.Join != nil {
		flags |= compFlagJoin
	}
	w.u8(flags)
	if c.Proj != nil {
		putProjection(w, c.Proj)
	}
	if c.Join != nil {
		if err := putJoin(w, c.Join); err != nil {
			return nil, err
		}
	}
	return w.buf, nil
}

// AppendRelTails appends the per-relation summary sections.
func AppendRelTails(buf []byte, tails []RelTail) []byte {
	w := &writer{buf: buf}
	w.u64(uint64(len(tails)))
	for _, t := range tails {
		w.bytes([]byte(t.Rel))
		w.u64(uint64(len(t.Summaries)))
		for i := range t.Summaries {
			putSummary(w, &t.Summaries[i])
		}
	}
	return w.buf
}

// DecodeComposite parses a complete 'C' message (core plus tails).
func DecodeComposite(data []byte) (*Composite, error) {
	r := &reader{buf: data}
	if err := header(r, 'C'); err != nil {
		return nil, err
	}
	outer, err := getAnswerBody(r)
	if err != nil {
		return nil, err
	}
	c := &Composite{Outer: outer}
	flags, err := r.u8()
	if err != nil {
		return nil, err
	}
	if flags&^(compFlagProj|compFlagJoin) != 0 {
		return nil, fmt.Errorf("%w: bad composite flags %#x", ErrCorrupt, flags)
	}
	if flags&compFlagProj != 0 {
		if c.Proj, err = getProjection(r); err != nil {
			return nil, err
		}
	}
	if flags&compFlagJoin != 0 {
		if c.Join, err = getJoin(r); err != nil {
			return nil, err
		}
	}
	nTails, err := r.u64()
	if err != nil {
		return nil, err
	}
	if nTails > maxRels {
		return nil, fmt.Errorf("%w: tail count %d", ErrCorrupt, nTails)
	}
	for i := uint64(0); i < nTails; i++ {
		name, err := r.bytes()
		if err != nil {
			return nil, err
		}
		t := RelTail{Rel: string(name)}
		nSums, err := r.u64()
		if err != nil {
			return nil, err
		}
		if nSums > maxLen {
			return nil, fmt.Errorf("%w: summary count %d", ErrCorrupt, nSums)
		}
		for j := uint64(0); j < nSums; j++ {
			s, err := getSummary(r)
			if err != nil {
				return nil, err
			}
			t.Summaries = append(t.Summaries, s)
		}
		c.Tails = append(c.Tails, t)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return c, nil
}

// ---- projection section (§3.4) ----

func putProjection(w *writer, p *projection.Answer) {
	w.u64(uint64(len(p.AttrIdxs)))
	for _, idx := range p.AttrIdxs {
		w.u64(uint64(idx))
	}
	w.u64(uint64(len(p.Rows)))
	for i := range p.Rows {
		row := &p.Rows[i]
		w.u64(row.RID)
		w.i64(row.TS)
		w.u64(uint64(len(row.Values)))
		for _, v := range row.Values {
			w.bytes(v)
		}
	}
	w.bytes(p.Agg)
}

func getProjection(r *reader) (*projection.Answer, error) {
	p := &projection.Answer{}
	nIdx, err := r.u64()
	if err != nil {
		return nil, err
	}
	if nIdx > maxLen {
		return nil, fmt.Errorf("%w: attr index count %d", ErrCorrupt, nIdx)
	}
	for i := uint64(0); i < nIdx; i++ {
		idx, err := r.u64()
		if err != nil {
			return nil, err
		}
		if idx > maxLen {
			return nil, fmt.Errorf("%w: attr index %d", ErrCorrupt, idx)
		}
		p.AttrIdxs = append(p.AttrIdxs, int(idx))
	}
	nRows, err := r.u64()
	if err != nil {
		return nil, err
	}
	if nRows > maxLen {
		return nil, fmt.Errorf("%w: row count %d", ErrCorrupt, nRows)
	}
	for i := uint64(0); i < nRows; i++ {
		var row projection.Row
		if row.RID, err = r.u64(); err != nil {
			return nil, err
		}
		if row.TS, err = r.i64(); err != nil {
			return nil, err
		}
		nVals, err := r.u64()
		if err != nil {
			return nil, err
		}
		if nVals > maxLen {
			return nil, fmt.Errorf("%w: value count %d", ErrCorrupt, nVals)
		}
		for j := uint64(0); j < nVals; j++ {
			v, err := r.bytes()
			if err != nil {
				return nil, err
			}
			row.Values = append(row.Values, v)
		}
		p.Rows = append(p.Rows, row)
	}
	agg, err := r.bytes()
	if err != nil {
		return nil, err
	}
	p.Agg = sigagg.Signature(agg)
	return p, nil
}

// ---- join section (§3.5) ----

const (
	unmatchedBoundary = 0
	unmatchedBloom    = 1
)

func putJoin(w *writer, j *join.Answer) error {
	w.u8(byte(j.Method))
	w.i64(j.FilterTS)
	w.u64(uint64(len(j.Matches)))
	for _, m := range j.Matches {
		putAnswerBody(w, m)
	}
	w.u64(uint64(len(j.Unmatched)))
	for i := range j.Unmatched {
		up := &j.Unmatched[i]
		w.i64(up.RA)
		switch {
		case up.Partition != nil:
			w.u8(unmatchedBloom)
			w.i64(up.Partition.Lo)
			w.i64(up.Partition.Hi)
			w.bytes(up.Partition.Filter.Marshal())
			w.bytes(up.PartSig)
		case up.Boundary != nil:
			w.u8(unmatchedBoundary)
			putAnswerBody(w, up.Boundary)
		default:
			return fmt.Errorf("wire: unmatched proof for %d carries neither partition nor boundary", up.RA)
		}
	}
	return nil
}

func getJoin(r *reader) (*join.Answer, error) {
	j := &join.Answer{}
	m, err := r.u8()
	if err != nil {
		return nil, err
	}
	j.Method = join.Method(m)
	if j.FilterTS, err = r.i64(); err != nil {
		return nil, err
	}
	nMatch, err := r.u64()
	if err != nil {
		return nil, err
	}
	if nMatch > maxLen {
		return nil, fmt.Errorf("%w: match count %d", ErrCorrupt, nMatch)
	}
	for i := uint64(0); i < nMatch; i++ {
		body, err := getAnswerBody(r)
		if err != nil {
			return nil, err
		}
		j.Matches = append(j.Matches, body)
	}
	nUn, err := r.u64()
	if err != nil {
		return nil, err
	}
	if nUn > maxLen {
		return nil, fmt.Errorf("%w: unmatched count %d", ErrCorrupt, nUn)
	}
	for i := uint64(0); i < nUn; i++ {
		var up join.UnmatchedProof
		if up.RA, err = r.i64(); err != nil {
			return nil, err
		}
		kind, err := r.u8()
		if err != nil {
			return nil, err
		}
		switch kind {
		case unmatchedBloom:
			part := &bloom.Partition{}
			if part.Lo, err = r.i64(); err != nil {
				return nil, err
			}
			if part.Hi, err = r.i64(); err != nil {
				return nil, err
			}
			fb, err := r.bytes()
			if err != nil {
				return nil, err
			}
			if part.Filter, err = bloom.Unmarshal(fb); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			sig, err := r.bytes()
			if err != nil {
				return nil, err
			}
			up.Partition, up.PartSig = part, sigagg.Signature(sig)
		case unmatchedBoundary:
			if up.Boundary, err = getAnswerBody(r); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: bad unmatched proof kind %d", ErrCorrupt, kind)
		}
		j.Unmatched = append(j.Unmatched, up)
	}
	return j, nil
}

// ---- relation-scoped summaries ('T') ----

// AppendRelSumsReq appends a relation-scoped summary request: the delta
// a session asks for when its held stream for one relation has a gap
// (the response is a plain 'F' summaries frame).
func AppendRelSumsReq(buf []byte, rel string, sinceSeq uint64, oldestTS int64) []byte {
	w := &writer{buf: buf}
	w.u8(Version)
	w.u8('T')
	w.bytes([]byte(rel))
	w.u64(sinceSeq)
	w.i64(oldestTS)
	return w.buf
}

// DecodeRelSumsReq parses a 'T' request.
func DecodeRelSumsReq(data []byte) (rel string, sinceSeq uint64, oldestTS int64, err error) {
	r := &reader{buf: data}
	if err = header(r, 'T'); err != nil {
		return "", 0, 0, err
	}
	name, err := r.bytes()
	if err != nil {
		return "", 0, 0, err
	}
	if sinceSeq, err = r.u64(); err != nil {
		return "", 0, 0, err
	}
	if oldestTS, err = r.i64(); err != nil {
		return "", 0, 0, err
	}
	if err = r.done(); err != nil {
		return "", 0, 0, err
	}
	return string(name), sinceSeq, oldestTS, nil
}
