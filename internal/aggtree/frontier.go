package aggtree

import (
	"fmt"

	"authdb/internal/sigagg"
)

// Node identifies a node Ti,j of the conceptual binary signature tree
// over a power-of-two leaf array: Level i (0 = leaves, log2(N) = root)
// and position j within the level.
type Node struct {
	Level int
	Pos   int64
}

// String renders the paper's Ti,j notation.
func (n Node) String() string { return fmt.Sprintf("T%d,%d", n.Level, n.Pos) }

// Span returns the leaf interval [lo, hi] covered by the node.
func (n Node) Span() (lo, hi int64) {
	c := int64(1) << n.Level
	return n.Pos * c, (n.Pos+1)*c - 1
}

// RefreshPolicy selects how pinned aggregates are maintained under leaf
// updates (§4.3).
type RefreshPolicy int

const (
	// EagerRefresh folds every update into the affected pinned
	// aggregates inside the update operation.
	EagerRefresh RefreshPolicy = iota
	// LazyRefresh records a coalesced delta per leaf and applies it on
	// the aggregate's next use.
	LazyRefresh
)

// CoverStats reports the cost of one Cover call: Ops is the total
// aggregation operations spent (including refreshes triggered along the
// way, which RefreshOps breaks out), and Hits counts the pinned
// aggregates used.
type CoverStats struct {
	Ops        int
	RefreshOps int
	Hits       int
}

type delta struct {
	old, new sigagg.Signature
}

type fentry struct {
	node     Node
	sig      sigagg.Signature
	pending  map[int64]delta // leaf index -> coalesced delta (lazy)
	accesses uint64
}

// NodeAccess pairs a pinned node with its access count.
type NodeAccess struct {
	Node  Node
	Count uint64
}

// Frontier is the §4 signature tree with only a pinned frontier of node
// aggregates materialized: leaves are always present, and a chosen set
// of internal nodes holds precomputed aggregates. Covering a range uses
// the cheapest mix of pinned aggregates and leaf combinations — spans
// without pinned cover cost linear work, which is precisely the
// memory-constrained cost model SigCache's selection optimizes.
//
// Frontier performs no locking; sigcache.Cache wraps it with a mutex
// and layers the selection/admission/revision policies and statistics.
type Frontier struct {
	scheme     sigagg.Scheme
	n          int64
	levels     int
	leaves     []sigagg.Signature
	entries    map[Node]*fentry
	policy     RefreshPolicy
	admitLevel int // >0: auto-admit computed blocks at this level or above
}

// NewFrontier creates a frontier over the given leaf signatures (length
// a power of two >= 2). The leaves are copied.
func NewFrontier(scheme sigagg.Scheme, leaves []sigagg.Signature, policy RefreshPolicy) (*Frontier, error) {
	n := int64(len(leaves))
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("aggtree: leaf count must be a power of two >= 2, got %d", n)
	}
	levels := 0
	for v := n; v > 1; v >>= 1 {
		levels++
	}
	own := make([]sigagg.Signature, n)
	copy(own, leaves)
	return &Frontier{
		scheme:  scheme,
		n:       n,
		levels:  levels,
		leaves:  own,
		entries: map[Node]*fentry{},
		policy:  policy,
	}, nil
}

// N returns the number of leaves.
func (f *Frontier) N() int64 { return f.n }

// Levels returns log2(N), the root level.
func (f *Frontier) Levels() int { return f.levels }

// PinnedCount returns the number of materialized node aggregates.
func (f *Frontier) PinnedCount() int { return len(f.entries) }

// Leaf returns the current signature of leaf idx.
func (f *Frontier) Leaf(idx int64) sigagg.Signature { return f.leaves[idx] }

// SetAdmitLevel makes Cover admit aggregates it computes for aligned
// blocks at or above level (<= 0 disables admission).
func (f *Frontier) SetAdmitLevel(level int) { f.admitLevel = level }

// Valid reports whether n addresses an internal node of this tree.
func (f *Frontier) Valid(n Node) bool {
	return n.Level >= 1 && n.Level <= f.levels && n.Pos >= 0 && n.Pos < f.n>>n.Level
}

// Pin materializes and pins the aggregate for node n, computing it from
// previously pinned descendants where possible. It reports the
// aggregation operations spent (zero when already pinned) and, of
// those, how many were refreshes of existing entries.
func (f *Frontier) Pin(n Node) (ops, refreshOps int, err error) {
	if !f.Valid(n) {
		return 0, 0, fmt.Errorf("aggtree: node %v out of range", n)
	}
	if _, ok := f.entries[n]; ok {
		return 0, 0, nil
	}
	lo, hi := n.Span()
	sig, st, err := f.Cover(lo, hi, false)
	if err != nil {
		return st.Ops, st.RefreshOps, err
	}
	f.entries[n] = &fentry{node: n, sig: sig, pending: map[int64]delta{}}
	return st.Ops, st.RefreshOps, nil
}

// Unpin drops a pinned aggregate.
func (f *Frontier) Unpin(n Node) { delete(f.entries, n) }

// Pinned reports whether node n currently holds a materialized
// aggregate.
func (f *Frontier) Pinned(n Node) bool {
	_, ok := f.entries[n]
	return ok
}

// Accesses returns the access counters of all pinned nodes.
func (f *Frontier) Accesses() []NodeAccess {
	out := make([]NodeAccess, 0, len(f.entries))
	for n, e := range f.entries {
		out = append(out, NodeAccess{Node: n, Count: e.accesses})
	}
	return out
}

// ResetAccesses zeroes every pinned node's access counter.
func (f *Frontier) ResetAccesses() {
	for _, e := range f.entries {
		e.accesses = 0
	}
}

// Cover builds the aggregate signature over leaves [lo, hi] (inclusive)
// from the cheapest available mix of pinned aggregates and leaves. When
// countAccesses is set, pinned-node access counters are bumped (queries
// count; internal materialization does not).
func (f *Frontier) Cover(lo, hi int64, countAccesses bool) (sigagg.Signature, CoverStats, error) {
	var st CoverStats
	if lo < 0 || hi >= f.n || lo > hi {
		return nil, st, fmt.Errorf("aggtree: bad range [%d,%d] over %d leaves", lo, hi, f.n)
	}
	sig, err := f.cover(Node{Level: f.levels, Pos: 0}, lo, hi, countAccesses, &st)
	return sig, st, err
}

func (f *Frontier) cover(node Node, lo, hi int64, count bool, st *CoverStats) (sigagg.Signature, error) {
	nlo, nhi := node.Span()
	if nhi < lo || nlo > hi {
		return nil, nil
	}
	if lo <= nlo && nhi <= hi {
		// Fully covered: use the pinned aggregate if present.
		if e, ok := f.entries[node]; ok {
			refreshOps, err := f.refresh(e)
			st.Ops += refreshOps
			st.RefreshOps += refreshOps
			if err != nil {
				return nil, err
			}
			if count {
				st.Hits++
				e.accesses++
			}
			return e.sig, nil
		}
		if node.Level == 0 {
			return f.leaves[nlo], nil
		}
	}
	if node.Level == 0 {
		return f.leaves[nlo], nil
	}
	left := Node{Level: node.Level - 1, Pos: node.Pos * 2}
	right := Node{Level: node.Level - 1, Pos: node.Pos*2 + 1}
	lsig, err := f.cover(left, lo, hi, count, st)
	if err != nil {
		return nil, err
	}
	rsig, err := f.cover(right, lo, hi, count, st)
	if err != nil {
		return nil, err
	}
	switch {
	case lsig == nil:
		return rsig, nil
	case rsig == nil:
		return lsig, nil
	default:
		sum, err := f.scheme.Add(lsig, rsig)
		if err != nil {
			return nil, err
		}
		st.Ops++
		// Adaptive admission (§4.2): keep block aggregates computed on
		// the query path so later queries reuse them.
		if count && f.admitLevel > 0 && node.Level >= f.admitLevel &&
			lo <= nlo && nhi <= hi {
			if _, cached := f.entries[node]; !cached {
				f.entries[node] = &fentry{node: node, sig: sum, pending: map[int64]delta{}}
			}
		}
		return sum, nil
	}
}

// CoverOps reports the aggregation operations a Cover of [lo, hi] would
// spend right now (including pending lazy refreshes of the pinned
// aggregates it would touch) without performing any of them — a dry run
// for callers choosing between this frontier and another proof path.
func (f *Frontier) CoverOps(lo, hi int64) int {
	if lo < 0 || hi >= f.n || lo > hi {
		return 0
	}
	ops, _ := f.coverOps(Node{Level: f.levels, Pos: 0}, lo, hi)
	return ops
}

func (f *Frontier) coverOps(node Node, lo, hi int64) (ops int, present bool) {
	nlo, nhi := node.Span()
	if nhi < lo || nlo > hi {
		return 0, false
	}
	if lo <= nlo && nhi <= hi {
		if e, ok := f.entries[node]; ok {
			return 2 * len(e.pending), true
		}
		if node.Level == 0 {
			return 0, true
		}
	}
	if node.Level == 0 {
		return 0, true
	}
	lops, lpresent := f.coverOps(Node{Level: node.Level - 1, Pos: node.Pos * 2}, lo, hi)
	rops, rpresent := f.coverOps(Node{Level: node.Level - 1, Pos: node.Pos*2 + 1}, lo, hi)
	ops = lops + rops
	if lpresent && rpresent {
		ops++
	}
	return ops, lpresent || rpresent
}

// refresh applies any pending lazy deltas to a pinned entry, returning
// the operations spent.
func (f *Frontier) refresh(e *fentry) (int, error) {
	if len(e.pending) == 0 {
		return 0, nil
	}
	ops := 0
	for _, d := range e.pending {
		var err error
		e.sig, err = f.scheme.Remove(e.sig, d.old)
		if err != nil {
			return ops, err
		}
		e.sig, err = f.scheme.Add(e.sig, d.new)
		if err != nil {
			return ops, err
		}
		ops += 2
	}
	e.pending = map[int64]delta{}
	return ops, nil
}

// UpdateLeaf installs a new signature for leaf idx and maintains the
// pinned aggregates above it per the refresh policy. ops is the
// operations spent folding the update into pinned aggregates (zero
// under LazyRefresh); staleOps counts refreshes of older pending deltas
// forced along the way (policy switches).
func (f *Frontier) UpdateLeaf(idx int64, sig sigagg.Signature) (ops, staleOps int, err error) {
	if idx < 0 || idx >= f.n {
		return 0, 0, fmt.Errorf("aggtree: leaf %d out of range", idx)
	}
	old := f.leaves[idx]
	f.leaves[idx] = sig
	for l, pos := 1, idx>>1; l <= f.levels; l, pos = l+1, pos>>1 {
		e, ok := f.entries[Node{Level: l, Pos: pos}]
		if !ok {
			continue
		}
		if f.policy == EagerRefresh {
			// Apply any older pending deltas first (policy switches).
			rops, err := f.refresh(e)
			staleOps += rops
			if err != nil {
				return ops, staleOps, err
			}
			if e.sig, err = f.scheme.Remove(e.sig, old); err != nil {
				return ops, staleOps, err
			}
			if e.sig, err = f.scheme.Add(e.sig, sig); err != nil {
				return ops, staleOps, err
			}
			ops += 2
		} else {
			// Coalesce: repeated updates to one leaf cost a single
			// remove/add pair at refresh time.
			if d, ok := e.pending[idx]; ok {
				e.pending[idx] = delta{old: d.old, new: sig}
			} else {
				e.pending[idx] = delta{old: old, new: sig}
			}
		}
	}
	return ops, staleOps, nil
}
