package aggtree

import (
	"fmt"
	"math/rand"
	"testing"

	"authdb/internal/digest"
	"authdb/internal/sigagg/xortest"
)

func benchTree(b *testing.B, n int) *Tree {
	b.Helper()
	scheme := xortest.New()
	priv, _, _ := scheme.KeyGen(nil)
	entries := make([]Entry, n)
	for i := range entries {
		d := digest.Sum([]byte(fmt.Sprintf("b-%d", i)))
		sig, _ := scheme.Sign(priv, d[:])
		entries[i] = Entry{Key: int64(i), RID: uint64(i), Sig: sig}
	}
	tr, _, err := BulkLoad(scheme, entries)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkAggRange(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tr := benchTree(b, n)
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			totalOps := 0
			for i := 0; i < b.N; i++ {
				q := rng.Int63n(int64(n)) + 1
				lo := rng.Int63n(int64(n) - q + 1)
				_, ops, err := tr.AggRange(lo, lo+q-1)
				if err != nil {
					b.Fatal(err)
				}
				totalOps += ops
			}
			b.ReportMetric(float64(totalOps)/float64(b.N), "aggops/op")
		})
	}
}

func BenchmarkUpsert(b *testing.B) {
	tr := benchTree(b, 1<<16)
	scheme := xortest.New()
	priv, _, _ := scheme.KeyGen(nil)
	d := digest.Sum([]byte("u"))
	sig, _ := scheme.Sign(priv, d[:])
	_ = sig
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := rng.Int63n(1 << 17)
		if _, _, err := tr.Upsert(Entry{Key: key, RID: uint64(i), Sig: sig}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBulkLoad(b *testing.B) {
	scheme := xortest.New()
	priv, _, _ := scheme.KeyGen(nil)
	const n = 1 << 16
	entries := make([]Entry, n)
	for i := range entries {
		d := digest.Sum([]byte(fmt.Sprintf("bl-%d", i)))
		sig, _ := scheme.Sign(priv, d[:])
		entries[i] = Entry{Key: int64(i), RID: uint64(i), Sig: sig}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := BulkLoad(scheme, entries); err != nil {
			b.Fatal(err)
		}
	}
}
