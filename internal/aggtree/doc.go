// Package aggtree provides the aggregation-tree structures behind the
// query server's O(log n) proof construction.
//
// Two structures are exported:
//
//   - Tree: a self-balancing search tree over ⟨key, rid, signature⟩
//     leaves where every node additionally stores the aggregate
//     signature of its subtree. Any range aggregate [lo, hi] costs
//     O(log n) Combine operations, and an upsert or delete maintains the
//     aggregates incrementally in O(log n) operations — no full rebuild,
//     ever. This is the structure each QueryServer shard queries on the
//     hot path.
//
//   - Frontier: the conceptual binary signature tree of SigCache (§4)
//     with only a *pinned frontier* of node aggregates materialized.
//     Uncached spans still cost linear work, which is exactly the
//     memory-constrained cost model the paper's Algorithm 1 optimizes;
//     sigcache layers its selection, admission and revision policies on
//     top of this structure.
//
// Both structures count the aggregation operations they perform (the
// paper's §4.1 cost unit: one Add/Remove/Combine of aggregate
// signatures), so callers can report and optimize proof-construction
// cost in scheme-independent terms.
//
// Neither structure locks internally: Tree is wrapped by the query
// server's per-shard locks, Frontier by sigcache.Cache's mutex. All read
// operations are safe for concurrent use with each other.
package aggtree
