package aggtree

import (
	"fmt"

	"authdb/internal/sigagg"
)

// Entry is one leaf of the aggregation tree: the indexed key, the record
// identifier and the record's aggregate-capable signature.
type Entry struct {
	Key int64
	RID uint64
	Sig sigagg.Signature
}

// Tree is a weight-balanced search tree over entries ordered by key,
// where every node also stores the aggregate signature of its subtree.
// Range aggregates and incremental maintenance (upsert, delete) both
// cost O(log n) aggregation operations. The zero value is not usable;
// call New or BulkLoad.
//
// Tree performs no locking. Mutations must be externally serialized;
// read operations (Get, AggRange, Scan, Len, Height) never mutate the
// tree and may run concurrently with each other.
type Tree struct {
	scheme  sigagg.Scheme
	root    *node
	scratch []sigagg.Signature // pull assembly buffer (mutation paths only)
}

type node struct {
	left, right *node
	size        int
	key         int64
	rid         uint64
	sig         sigagg.Signature // the leaf signature stored at this node
	agg         sigagg.Signature // aggregate over the whole subtree
}

func (n *node) sz() int {
	if n == nil {
		return 0
	}
	return n.size
}

// Weight-balance parameters (Adams' trees, the variant used by Haskell's
// Data.Map): a node is rebalanced when one child's weight exceeds
// wDelta times the other's; wRatio selects single vs double rotation.
const (
	wDelta = 3
	wRatio = 2
)

func weight(n *node) int { return n.sz() + 1 }

// New returns an empty tree aggregating under scheme.
func New(scheme sigagg.Scheme) *Tree {
	return &Tree{scheme: scheme}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.root.sz() }

// Height returns the longest root-to-leaf path length (0 for an empty
// tree), for balance diagnostics.
func (t *Tree) Height() int { return height(t.root) }

func height(n *node) int {
	if n == nil {
		return 0
	}
	l, r := height(n.left), height(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Get returns the entry stored under key.
func (t *Tree) Get(key int64) (Entry, bool) {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return Entry{Key: n.key, RID: n.rid, Sig: n.sig}, true
		}
	}
	return Entry{}, false
}

// Scan calls fn for every entry in key order, stopping early when fn
// returns false.
func (t *Tree) Scan(fn func(Entry) bool) {
	scan(t.root, fn)
}

func scan(n *node, fn func(Entry) bool) bool {
	if n == nil {
		return true
	}
	if !scan(n.left, fn) {
		return false
	}
	if !fn(Entry{Key: n.key, RID: n.rid, Sig: n.sig}) {
		return false
	}
	return scan(n.right, fn)
}

// pull recomputes n's size and aggregate from its children, returning
// the aggregation operations spent. Aggregates are always written to
// fresh storage: previously returned range aggregates may alias node
// aggregates and must never be mutated behind the caller's back.
func (t *Tree) pull(n *node) (int, error) {
	n.size = 1 + n.left.sz() + n.right.sz()
	t.scratch = t.scratch[:0]
	if n.left != nil {
		t.scratch = append(t.scratch, n.left.agg)
	}
	t.scratch = append(t.scratch, n.sig)
	if n.right != nil {
		t.scratch = append(t.scratch, n.right.agg)
	}
	if len(t.scratch) == 1 {
		n.agg = n.sig
		return 0, nil
	}
	agg, err := sigagg.AggregateInto(t.scheme, nil, t.scratch)
	if err != nil {
		return 0, err
	}
	n.agg = agg
	return len(t.scratch) - 1, nil
}

func (t *Tree) rotateLeft(n *node) (*node, int, error) {
	r := n.right
	n.right = r.left
	ops, err := t.pull(n)
	if err != nil {
		return nil, ops, err
	}
	r.left = n
	more, err := t.pull(r)
	return r, ops + more, err
}

func (t *Tree) rotateRight(n *node) (*node, int, error) {
	l := n.left
	n.left = l.right
	ops, err := t.pull(n)
	if err != nil {
		return nil, ops, err
	}
	l.right = n
	more, err := t.pull(l)
	return l, ops + more, err
}

// balance restores the weight invariant at n after one child changed by
// a single insertion or deletion. n's size and aggregate must already be
// current (pull before balance).
func (t *Tree) balance(n *node) (*node, int, error) {
	lw, rw := weight(n.left), weight(n.right)
	switch {
	case lw+rw <= 2: // at most one entry below
		return n, 0, nil
	case rw > wDelta*lw:
		ops := 0
		if weight(n.right.left) >= wRatio*weight(n.right.right) {
			nr, rops, err := t.rotateRight(n.right)
			if err != nil {
				return nil, rops, err
			}
			n.right = nr
			ops = rops
		}
		root, rops, err := t.rotateLeft(n)
		return root, ops + rops, err
	case lw > wDelta*rw:
		ops := 0
		if weight(n.left.right) >= wRatio*weight(n.left.left) {
			nl, rops, err := t.rotateLeft(n.left)
			if err != nil {
				return nil, rops, err
			}
			n.left = nl
			ops = rops
		}
		root, rops, err := t.rotateRight(n)
		return root, ops + rops, err
	default:
		return n, 0, nil
	}
}

// Upsert inserts the entry or replaces the signature (and rid) stored
// under its key. It returns whether an existing entry was replaced and
// the aggregation operations spent on maintenance.
func (t *Tree) Upsert(e Entry) (replaced bool, ops int, err error) {
	root, replaced, ops, err := t.upsert(t.root, e)
	if err != nil {
		return false, ops, err
	}
	t.root = root
	return replaced, ops, nil
}

func (t *Tree) upsert(n *node, e Entry) (*node, bool, int, error) {
	if n == nil {
		return &node{size: 1, key: e.Key, rid: e.RID, sig: e.Sig, agg: e.Sig}, false, 0, nil
	}
	var (
		replaced bool
		child    *node
		ops      int
		err      error
	)
	switch {
	case e.Key < n.key:
		child, replaced, ops, err = t.upsert(n.left, e)
		n.left = child
	case e.Key > n.key:
		child, replaced, ops, err = t.upsert(n.right, e)
		n.right = child
	default:
		n.rid, n.sig = e.RID, e.Sig
		pops, perr := t.pull(n)
		return n, true, pops, perr
	}
	if err != nil {
		return nil, replaced, ops, err
	}
	pops, err := t.pull(n)
	ops += pops
	if err != nil {
		return nil, replaced, ops, err
	}
	if replaced {
		// Size unchanged: the weight invariant still holds.
		return n, true, ops, nil
	}
	root, bops, err := t.balance(n)
	return root, replaced, ops + bops, err
}

// Delete removes the entry stored under key, returning whether it
// existed and the aggregation operations spent on maintenance.
func (t *Tree) Delete(key int64) (deleted bool, ops int, err error) {
	root, deleted, ops, err := t.delete(t.root, key)
	if err != nil {
		return false, ops, err
	}
	t.root = root
	return deleted, ops, nil
}

func (t *Tree) delete(n *node, key int64) (*node, bool, int, error) {
	if n == nil {
		return nil, false, 0, nil
	}
	var (
		deleted bool
		child   *node
		ops     int
		err     error
	)
	switch {
	case key < n.key:
		child, deleted, ops, err = t.delete(n.left, key)
		n.left = child
	case key > n.key:
		child, deleted, ops, err = t.delete(n.right, key)
		n.right = child
	default:
		if n.left == nil {
			return n.right, true, 0, nil
		}
		if n.right == nil {
			return n.left, true, 0, nil
		}
		// Replace n's payload with the successor (min of right subtree).
		min, rest, mops, merr := t.deleteMin(n.right)
		if merr != nil {
			return nil, true, mops, merr
		}
		n.key, n.rid, n.sig = min.key, min.rid, min.sig
		n.right = rest
		deleted, ops, err = true, mops, nil
	}
	if err != nil || !deleted {
		return n, deleted, ops, err
	}
	pops, err := t.pull(n)
	ops += pops
	if err != nil {
		return nil, deleted, ops, err
	}
	root, bops, err := t.balance(n)
	return root, deleted, ops + bops, err
}

func (t *Tree) deleteMin(n *node) (min *node, rest *node, ops int, err error) {
	if n.left == nil {
		return n, n.right, 0, nil
	}
	min, child, ops, err := t.deleteMin(n.left)
	if err != nil {
		return nil, nil, ops, err
	}
	n.left = child
	pops, err := t.pull(n)
	ops += pops
	if err != nil {
		return nil, nil, ops, err
	}
	root, bops, err := t.balance(n)
	return min, root, ops + bops, err
}

// AggRange returns the aggregate signature over every entry with
// lo <= key <= hi, and the number of aggregation operations spent —
// O(log n), the point of the structure. A range containing no entries
// yields a nil signature. The returned signature may alias internal
// storage and must not be mutated.
func (t *Tree) AggRange(lo, hi int64) (sigagg.Signature, int, error) {
	if lo > hi {
		return nil, 0, fmt.Errorf("aggtree: inverted range [%d,%d]", lo, hi)
	}
	ra := rangeAgg{scheme: t.scheme}
	if err := ra.split(t.root, lo, hi); err != nil {
		return nil, ra.ops, err
	}
	return ra.acc, ra.ops, nil
}

type rangeAgg struct {
	scheme sigagg.Scheme
	acc    sigagg.Signature
	ops    int
}

func (ra *rangeAgg) add(sig sigagg.Signature) error {
	if sig == nil {
		return nil
	}
	if ra.acc == nil {
		ra.acc = sig
		return nil
	}
	var err error
	ra.acc, err = ra.scheme.Add(ra.acc, sig)
	ra.ops++
	return err
}

// split descends to the topmost node inside [lo, hi], then covers the
// two flanks with geometrically growing whole subtrees.
func (ra *rangeAgg) split(n *node, lo, hi int64) error {
	for n != nil {
		switch {
		case n.key < lo:
			n = n.right
		case n.key > hi:
			n = n.left
		default:
			if err := ra.coverGE(n.left, lo); err != nil {
				return err
			}
			if err := ra.add(n.sig); err != nil {
				return err
			}
			return ra.coverLE(n.right, hi)
		}
	}
	return nil
}

// coverGE aggregates every entry of n's subtree with key >= lo.
func (ra *rangeAgg) coverGE(n *node, lo int64) error {
	for n != nil {
		if n.key < lo {
			n = n.right
			continue
		}
		if err := ra.add(n.sig); err != nil {
			return err
		}
		if n.right != nil {
			if err := ra.add(n.right.agg); err != nil {
				return err
			}
		}
		n = n.left
	}
	return nil
}

// coverLE aggregates every entry of n's subtree with key <= hi.
func (ra *rangeAgg) coverLE(n *node, hi int64) error {
	for n != nil {
		if n.key > hi {
			n = n.left
			continue
		}
		if err := ra.add(n.sig); err != nil {
			return err
		}
		if n.left != nil {
			if err := ra.add(n.left.agg); err != nil {
				return err
			}
		}
		n = n.right
	}
	return nil
}

// BulkLoad builds a perfectly balanced tree from entries strictly sorted
// by key, computing every subtree aggregate bottom-up in Θ(n) total
// aggregation operations (vs Θ(n log n) for n incremental upserts). It
// returns the tree and the operations spent.
func BulkLoad(scheme sigagg.Scheme, entries []Entry) (*Tree, int, error) {
	for i := 1; i < len(entries); i++ {
		if entries[i].Key <= entries[i-1].Key {
			return nil, 0, fmt.Errorf("aggtree: bulk load input not strictly sorted at %d", i)
		}
	}
	t := New(scheme)
	root, ops, err := t.build(entries)
	if err != nil {
		return nil, ops, err
	}
	t.root = root
	return t, ops, nil
}

func (t *Tree) build(entries []Entry) (*node, int, error) {
	if len(entries) == 0 {
		return nil, 0, nil
	}
	mid := len(entries) / 2
	e := entries[mid]
	n := &node{key: e.Key, rid: e.RID, sig: e.Sig}
	var ops int
	left, lops, err := t.build(entries[:mid])
	ops += lops
	if err != nil {
		return nil, ops, err
	}
	right, rops, err := t.build(entries[mid+1:])
	ops += rops
	if err != nil {
		return nil, ops, err
	}
	n.left, n.right = left, right
	pops, err := t.pull(n)
	ops += pops
	if err != nil {
		return nil, ops, err
	}
	return n, ops, nil
}
