package aggtree

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"authdb/internal/digest"
	"authdb/internal/sigagg"
	"authdb/internal/sigagg/bas"
	"authdb/internal/sigagg/xortest"
)

func sigFor(t testing.TB, scheme sigagg.Scheme, priv sigagg.PrivateKey, tag string) sigagg.Signature {
	t.Helper()
	d := digest.Sum([]byte(tag))
	sig, err := scheme.Sign(priv, d[:])
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

// oracle is the brute-force reference: a sorted slice of entries with
// linear aggregation.
type oracle struct {
	scheme  sigagg.Scheme
	entries []Entry
}

func (o *oracle) upsert(e Entry) {
	i := sort.Search(len(o.entries), func(i int) bool { return o.entries[i].Key >= e.Key })
	if i < len(o.entries) && o.entries[i].Key == e.Key {
		o.entries[i] = e
		return
	}
	o.entries = append(o.entries, Entry{})
	copy(o.entries[i+1:], o.entries[i:])
	o.entries[i] = e
}

func (o *oracle) delete(key int64) bool {
	i := sort.Search(len(o.entries), func(i int) bool { return o.entries[i].Key >= key })
	if i >= len(o.entries) || o.entries[i].Key != key {
		return false
	}
	o.entries = append(o.entries[:i], o.entries[i+1:]...)
	return true
}

func (o *oracle) aggRange(t *testing.T, lo, hi int64) sigagg.Signature {
	t.Helper()
	var sigs []sigagg.Signature
	for _, e := range o.entries {
		if e.Key >= lo && e.Key <= hi {
			sigs = append(sigs, e.Sig)
		}
	}
	if len(sigs) == 0 {
		return nil
	}
	agg, err := o.scheme.Aggregate(sigs)
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

// validate checks the BST ordering, the size fields, the weight-balance
// invariant and every subtree aggregate against a recomputation.
func (tr *Tree) validate(t *testing.T) {
	t.Helper()
	var prev *int64
	var walk func(n *node) int
	walk = func(n *node) int {
		if n == nil {
			return 0
		}
		ls := walk(n.left)
		if prev != nil && n.key <= *prev {
			t.Fatalf("order violation: %d after %d", n.key, *prev)
		}
		k := n.key
		prev = &k
		rs := walk(n.right)
		if n.size != ls+rs+1 {
			t.Fatalf("size mismatch at key %d: %d != %d", n.key, n.size, ls+rs+1)
		}
		if ls+rs >= 2 {
			lw, rw := ls+1, rs+1
			if lw > wDelta*rw || rw > wDelta*lw {
				t.Fatalf("weight invariant violated at key %d: %d vs %d", n.key, lw, rw)
			}
		}
		// Aggregate must equal the combination of the subtree parts.
		parts := []sigagg.Signature{n.sig}
		if n.left != nil {
			parts = append(parts, n.left.agg)
		}
		if n.right != nil {
			parts = append(parts, n.right.agg)
		}
		want, err := tr.scheme.Aggregate(parts)
		if err != nil {
			t.Fatal(err)
		}
		if string(want) != string(n.agg) {
			t.Fatalf("aggregate mismatch at key %d", n.key)
		}
		return n.size
	}
	walk(tr.root)
}

func TestRandomInterleavedOpsVsOracle(t *testing.T) {
	scheme := xortest.New()
	priv, _, _ := scheme.KeyGen(nil)
	rng := rand.New(rand.NewSource(42))
	tr := New(scheme)
	o := &oracle{scheme: scheme}

	const steps = 4000
	const keySpace = 600
	for i := 0; i < steps; i++ {
		key := rng.Int63n(keySpace)
		switch rng.Intn(10) {
		case 0, 1: // delete
			wantDel := o.delete(key)
			gotDel, _, err := tr.Delete(key)
			if err != nil {
				t.Fatal(err)
			}
			if gotDel != wantDel {
				t.Fatalf("step %d: Delete(%d) = %v, oracle %v", i, key, gotDel, wantDel)
			}
		default: // upsert
			e := Entry{Key: key, RID: uint64(i), Sig: sigFor(t, scheme, priv, fmt.Sprintf("s-%d", i))}
			o.upsert(e)
			if _, _, err := tr.Upsert(e); err != nil {
				t.Fatal(err)
			}
		}
		if tr.Len() != len(o.entries) {
			t.Fatalf("step %d: Len = %d, oracle %d", i, tr.Len(), len(o.entries))
		}
		if i%250 == 0 {
			tr.validate(t)
		}
		// Random range check against linear aggregation.
		lo := rng.Int63n(keySpace)
		hi := lo + rng.Int63n(keySpace-lo)
		got, _, err := tr.AggRange(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		want := o.aggRange(t, lo, hi)
		if string(got) != string(want) {
			t.Fatalf("step %d: AggRange(%d,%d) mismatch", i, lo, hi)
		}
	}
	tr.validate(t)
}

func TestAggRangeOpsLogarithmic(t *testing.T) {
	scheme := xortest.New()
	priv, _, _ := scheme.KeyGen(nil)
	const n = 1 << 14
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: int64(i) * 3, RID: uint64(i), Sig: sigFor(t, scheme, priv, fmt.Sprintf("l-%d", i))}
	}
	tr, _, err := BulkLoad(scheme, entries)
	if err != nil {
		t.Fatal(err)
	}
	logN := math.Log2(n)
	if h := tr.Height(); float64(h) > 2.5*logN {
		t.Fatalf("height %d too large for n=%d", h, n)
	}
	rng := rand.New(rand.NewSource(7))
	maxOps := 0
	for i := 0; i < 500; i++ {
		a := rng.Int63n(3 * n)
		b := rng.Int63n(3 * n)
		if a > b {
			a, b = b, a
		}
		_, ops, err := tr.AggRange(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if ops > maxOps {
			maxOps = ops
		}
	}
	// Two adds per level on each flank.
	if bound := int(4*logN) + 4; maxOps > bound {
		t.Fatalf("max AggRange ops %d exceeds O(log n) bound %d", maxOps, bound)
	}
}

func TestMaintenanceOpsLogarithmic(t *testing.T) {
	scheme := xortest.New()
	priv, _, _ := scheme.KeyGen(nil)
	const n = 1 << 12
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: int64(i), RID: uint64(i), Sig: sigFor(t, scheme, priv, fmt.Sprintf("m-%d", i))}
	}
	tr, _, err := BulkLoad(scheme, entries)
	if err != nil {
		t.Fatal(err)
	}
	bound := int(8 * math.Log2(n)) // ≤2 pull ops/level plus rotation repulls
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 300; i++ {
		key := rng.Int63n(2 * n)
		_, ops, err := tr.Upsert(Entry{Key: key, RID: uint64(i), Sig: sigFor(t, scheme, priv, fmt.Sprintf("u-%d", i))})
		if err != nil {
			t.Fatal(err)
		}
		if ops > bound {
			t.Fatalf("upsert ops %d exceeds bound %d", ops, bound)
		}
		_, ops, err = tr.Delete(rng.Int63n(2 * n))
		if err != nil {
			t.Fatal(err)
		}
		if ops > bound {
			t.Fatalf("delete ops %d exceeds bound %d", ops, bound)
		}
	}
}

func TestBulkLoadMatchesIncremental(t *testing.T) {
	scheme := xortest.New()
	priv, _, _ := scheme.KeyGen(nil)
	const n = 1000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: int64(i) * 2, RID: uint64(i), Sig: sigFor(t, scheme, priv, fmt.Sprintf("b-%d", i))}
	}
	bulk, bulkOps, err := BulkLoad(scheme, entries)
	if err != nil {
		t.Fatal(err)
	}
	if bulkOps > 2*n {
		t.Fatalf("bulk load spent %d ops, want Θ(n)", bulkOps)
	}
	incr := New(scheme)
	for _, e := range entries {
		if _, _, err := incr.Upsert(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range [][2]int64{{0, 2 * n}, {3, 77}, {500, 501}, {1999, 1999}} {
		a, _, _ := bulk.AggRange(r[0], r[1])
		b, _, _ := incr.AggRange(r[0], r[1])
		if string(a) != string(b) {
			t.Fatalf("bulk and incremental aggregates differ on [%d,%d]", r[0], r[1])
		}
	}
	bulk.validate(t)
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	scheme := xortest.New()
	if _, _, err := BulkLoad(scheme, []Entry{{Key: 5}, {Key: 5}}); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	if _, _, err := BulkLoad(scheme, []Entry{{Key: 5}, {Key: 3}}); err == nil {
		t.Fatal("unsorted keys accepted")
	}
}

func TestAggRangeVerifiesUnderBAS(t *testing.T) {
	scheme := bas.New(0)
	priv, pub, err := scheme.KeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	tr := New(scheme)
	digests := make([][]byte, n)
	for i := 0; i < n; i++ {
		d := digest.Sum([]byte(fmt.Sprintf("bas-%d", i)))
		digests[i] = d[:]
		sig, err := scheme.Sign(priv, d[:])
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := tr.Upsert(Entry{Key: int64(i), RID: uint64(i), Sig: sig}); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range [][2]int64{{0, 63}, {5, 37}, {10, 10}, {62, 63}} {
		agg, _, err := tr.AggRange(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if err := scheme.AggregateVerify(pub, digests[r[0]:r[1]+1], agg); err != nil {
			t.Fatalf("range [%d,%d]: %v", r[0], r[1], err)
		}
	}
}

func TestAggRangeEmptyAndErrors(t *testing.T) {
	scheme := xortest.New()
	tr := New(scheme)
	if sig, ops, err := tr.AggRange(0, 100); err != nil || sig != nil || ops != 0 {
		t.Fatalf("empty tree: sig=%v ops=%d err=%v", sig, ops, err)
	}
	if _, _, err := tr.AggRange(5, 4); err == nil {
		t.Fatal("inverted range accepted")
	}
	priv, _, _ := scheme.KeyGen(nil)
	tr.Upsert(Entry{Key: 10, Sig: sigFor(t, scheme, priv, "x")})
	if sig, _, err := tr.AggRange(11, 20); err != nil || sig != nil {
		t.Fatalf("empty span: sig=%v err=%v", sig, err)
	}
}

func TestGetAndScan(t *testing.T) {
	scheme := xortest.New()
	priv, _, _ := scheme.KeyGen(nil)
	tr := New(scheme)
	keys := []int64{5, 1, 9, 3, 7}
	for i, k := range keys {
		tr.Upsert(Entry{Key: k, RID: uint64(i), Sig: sigFor(t, scheme, priv, fmt.Sprintf("g-%d", k))})
	}
	if _, ok := tr.Get(4); ok {
		t.Fatal("absent key found")
	}
	e, ok := tr.Get(7)
	if !ok || e.RID != 4 {
		t.Fatalf("Get(7) = %+v, %v", e, ok)
	}
	var got []int64
	tr.Scan(func(e Entry) bool {
		got = append(got, e.Key)
		return true
	})
	want := []int64{1, 3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan order %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	tr.Scan(func(Entry) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("scan did not stop early: %d", count)
	}
}
