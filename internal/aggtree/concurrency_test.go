package aggtree

import (
	"fmt"
	"sync"
	"testing"

	"authdb/internal/sigagg/xortest"
)

// TestConcurrentReadsDuringWrites mirrors the query-server usage: one
// writer mutates under an external write lock while readers aggregate
// ranges under read locks. Run with -race.
func TestConcurrentReadsDuringWrites(t *testing.T) {
	scheme := xortest.New()
	priv, _, _ := scheme.KeyGen(nil)
	const n = 2048
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: int64(i), RID: uint64(i), Sig: sigFor(t, scheme, priv, fmt.Sprintf("c-%d", i))}
	}
	tr, _, err := BulkLoad(scheme, entries)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.RWMutex
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			sig := sigFor(t, scheme, priv, fmt.Sprintf("w-%d", i))
			mu.Lock()
			switch i % 3 {
			case 0:
				_, _, err = tr.Upsert(Entry{Key: int64(i % n), RID: uint64(i), Sig: sig})
			case 1:
				_, _, err = tr.Delete(int64((i * 7) % n))
			default:
				_, _, err = tr.Upsert(Entry{Key: int64(n + i), RID: uint64(i), Sig: sig})
			}
			mu.Unlock()
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				lo := (seed*31 + int64(i)*17) % n
				mu.RLock()
				_, _, err := tr.AggRange(lo, lo+97)
				l := tr.Len()
				mu.RUnlock()
				if err != nil {
					t.Error(err)
					return
				}
				if l < 0 {
					t.Error("negative len")
					return
				}
			}
		}(int64(r))
	}
	wg.Wait()
	tr.validate(t)
}
