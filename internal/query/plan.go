// Package query is the streaming planner and executor for authenticated
// select-project-join requests over a multi-relation catalog.
//
// A client describes a query declaratively (Spec): a selection range on
// an outer relation, an optional projection onto a subset of attribute
// slots, and an optional PK equi-join against an inner relation. Plan
// compiles the spec into a small operator tree whose leaves are
// authenticated B+-tree range scans. The default plan pushes the
// selection predicate into the outer scan leaf; the naive tree — kept
// only as the measured baseline for the pushdown win — scans the full
// key domain and filters above. Join probes against the inner relation
// fan out across the worker pool as independent subplans.
//
// The tree has a canonical binary encoding (Marshal/UnmarshalPlan).
// Those bytes travel verbatim in the 'J'/'P' wire frames and double as
// the answer-cache key, so two clients issuing the same σ/π/⋈ share one
// cached composite answer.
package query

import (
	"encoding/binary"
	"fmt"

	"authdb/internal/chain"
	"authdb/internal/join"
)

// Spec is the declarative form of one query:
// π_Attrs( σ_{Lo<=key<=Hi}(Rel) ⋈_{key} Join.Rel ).
type Spec struct {
	Rel    string
	Lo, Hi int64
	Attrs  []int     // projected attribute slots of Rel; nil = no projection
	Join   *JoinSpec // nil = plain selection
}

// JoinSpec names the inner relation of a PK equi-join and the
// unmatched-proof mechanism (§3.5 BV boundaries or certified Bloom
// filters with BV fallback).
type JoinSpec struct {
	Rel    string
	Method join.Method
}

// Op enumerates the plan operators.
type Op uint8

const (
	// OpScan is an authenticated range-scan leaf over one relation.
	OpScan Op = iota + 1
	// OpFilter applies a residual σ above its child — present only in
	// the naive (no-pushdown) tree.
	OpFilter
	// OpProject projects its child's rows onto attribute slots.
	OpProject
	// OpJoin PK equi-joins its outer child against the inner Right scan.
	OpJoin
)

// String names the operator.
func (op Op) String() string {
	switch op {
	case OpScan:
		return "scan"
	case OpFilter:
		return "filter"
	case OpProject:
		return "project"
	case OpJoin:
		return "join"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Node is one operator of a plan tree.
type Node struct {
	Op     Op
	Rel    string      // OpScan: the scanned relation
	Lo, Hi int64       // OpScan: pushed range; OpFilter: residual range
	Attrs  []int       // OpProject: projected attribute slots
	Method join.Method // OpJoin: unmatched-proof mechanism
	Child  *Node       // unary input (nil for OpScan)
	Right  *Node       // OpJoin: inner scan leaf
}

// Plan compiles spec into an executable tree. With pushdown (the
// planner default) the selection range lands in the outer scan leaf, so
// the B+-tree walk touches only the selected window. Without pushdown
// the leaf scans the full key domain and an OpFilter discards the rest
// above it — the baseline an optimizer must beat.
func Plan(spec *Spec, pushdown bool) (*Node, error) {
	if spec == nil || spec.Rel == "" {
		return nil, fmt.Errorf("query: plan needs an outer relation")
	}
	if spec.Lo > spec.Hi {
		return nil, fmt.Errorf("query: inverted range [%d, %d]", spec.Lo, spec.Hi)
	}
	for _, a := range spec.Attrs {
		if a < 0 {
			return nil, fmt.Errorf("query: negative attribute slot %d", a)
		}
	}
	var n *Node
	if pushdown {
		n = &Node{Op: OpScan, Rel: spec.Rel, Lo: spec.Lo, Hi: spec.Hi}
	} else {
		n = &Node{
			Op: OpFilter, Lo: spec.Lo, Hi: spec.Hi,
			Child: &Node{Op: OpScan, Rel: spec.Rel, Lo: chain.MinKey + 1, Hi: chain.MaxKey - 1},
		}
	}
	if spec.Join != nil {
		if spec.Join.Rel == "" {
			return nil, fmt.Errorf("query: join needs an inner relation")
		}
		if spec.Join.Method != join.BV && spec.Join.Method != join.BF {
			return nil, fmt.Errorf("query: unknown join method %d", spec.Join.Method)
		}
		n = &Node{
			Op: OpJoin, Method: spec.Join.Method, Child: n,
			// The inner leaf is a probe template: probes are point scans
			// σ_{key=v}, so its range is filled per probe at run time.
			Right: &Node{Op: OpScan, Rel: spec.Join.Rel},
		}
	}
	if spec.Attrs != nil {
		n = &Node{Op: OpProject, Attrs: spec.Attrs, Child: n}
	}
	return n, nil
}

// shape decomposes a plan tree back into its (at most one each, in
// Project→Join→Filter→Scan order) operators, validating the tree an
// untrusted client sent over the wire.
type shape struct {
	proj, jn, filter, scan *Node
}

func analyze(n *Node) (*shape, error) {
	var s shape
	prev := Op(0) // operators must appear in strictly increasing "depth"
	rank := map[Op]Op{OpProject: 1, OpJoin: 2, OpFilter: 3, OpScan: 4}
	for cur := n; cur != nil; cur = cur.Child {
		r, ok := rank[cur.Op]
		if !ok {
			return nil, fmt.Errorf("query: unknown operator %d", cur.Op)
		}
		if r <= prev {
			return nil, fmt.Errorf("query: operator %s misplaced in plan", cur.Op)
		}
		prev = r
		switch cur.Op {
		case OpProject:
			s.proj = cur
		case OpJoin:
			s.jn = cur
			if cur.Right == nil || cur.Right.Op != OpScan || cur.Right.Rel == "" {
				return nil, fmt.Errorf("query: join without an inner scan leaf")
			}
			if cur.Method != join.BV && cur.Method != join.BF {
				return nil, fmt.Errorf("query: unknown join method %d", cur.Method)
			}
		case OpFilter:
			if cur.Lo > cur.Hi {
				return nil, fmt.Errorf("query: inverted filter range [%d, %d]", cur.Lo, cur.Hi)
			}
			s.filter = cur
		case OpScan:
			if cur.Rel == "" {
				return nil, fmt.Errorf("query: scan without a relation")
			}
			if cur.Lo > cur.Hi {
				return nil, fmt.Errorf("query: inverted scan range [%d, %d]", cur.Lo, cur.Hi)
			}
			s.scan = cur
		}
	}
	if s.scan == nil {
		return nil, fmt.Errorf("query: plan has no scan leaf")
	}
	return &s, nil
}

// Range reports the effective selection range of the plan: the residual
// filter's if present, else the pushed scan range. This is what the
// answer cache keys on next to the plan bytes, and what the outer chain
// proof must cover.
func (n *Node) Range() (lo, hi int64, err error) {
	s, err := analyze(n)
	if err != nil {
		return 0, 0, err
	}
	if s.filter != nil {
		return s.filter.Lo, s.filter.Hi, nil
	}
	return s.scan.Lo, s.scan.Hi, nil
}

// ---- canonical binary plan encoding ----
//
// Pre-order, length-prefixed, no floats, no maps: the same tree always
// marshals to the same bytes, so plan bytes are a valid cache key.

const (
	// maxPlanBytes bounds what UnmarshalPlan will touch — plans are tiny
	// (a handful of operators); anything bigger is hostile.
	maxPlanBytes = 4096
	maxAttrs     = 1024
	maxRelName   = 256
)

// Marshal encodes the tree canonically.
func (n *Node) Marshal() []byte {
	return n.appendTo(make([]byte, 0, 64))
}

func (n *Node) appendTo(buf []byte) []byte {
	if n == nil {
		return append(buf, 0)
	}
	buf = append(buf, byte(n.Op))
	switch n.Op {
	case OpScan:
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(n.Rel)))
		buf = append(buf, n.Rel...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(n.Lo))
		buf = binary.BigEndian.AppendUint64(buf, uint64(n.Hi))
	case OpFilter:
		buf = binary.BigEndian.AppendUint64(buf, uint64(n.Lo))
		buf = binary.BigEndian.AppendUint64(buf, uint64(n.Hi))
		buf = n.Child.appendTo(buf)
	case OpProject:
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(n.Attrs)))
		for _, a := range n.Attrs {
			buf = binary.BigEndian.AppendUint32(buf, uint32(a))
		}
		buf = n.Child.appendTo(buf)
	case OpJoin:
		buf = append(buf, byte(n.Method))
		buf = n.Child.appendTo(buf)
		buf = n.Right.appendTo(buf)
	}
	return buf
}

type planReader struct {
	data []byte
	pos  int
}

func (r *planReader) u8() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, fmt.Errorf("query: truncated plan")
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *planReader) u16() (int, error) {
	if r.pos+2 > len(r.data) {
		return 0, fmt.Errorf("query: truncated plan")
	}
	v := int(binary.BigEndian.Uint16(r.data[r.pos:]))
	r.pos += 2
	return v, nil
}

func (r *planReader) u64() (int64, error) {
	if r.pos+8 > len(r.data) {
		return 0, fmt.Errorf("query: truncated plan")
	}
	v := int64(binary.BigEndian.Uint64(r.data[r.pos:]))
	r.pos += 8
	return v, nil
}

func (r *planReader) node(depth int) (*Node, error) {
	if depth > 8 {
		return nil, fmt.Errorf("query: plan tree too deep")
	}
	op, err := r.u8()
	if err != nil {
		return nil, err
	}
	if op == 0 {
		return nil, nil
	}
	n := &Node{Op: Op(op)}
	switch n.Op {
	case OpScan:
		ln, err := r.u16()
		if err != nil {
			return nil, err
		}
		if ln == 0 || ln > maxRelName || r.pos+ln > len(r.data) {
			return nil, fmt.Errorf("query: bad relation name length %d", ln)
		}
		n.Rel = string(r.data[r.pos : r.pos+ln])
		r.pos += ln
		if n.Lo, err = r.u64(); err != nil {
			return nil, err
		}
		if n.Hi, err = r.u64(); err != nil {
			return nil, err
		}
	case OpFilter:
		if n.Lo, err = r.u64(); err != nil {
			return nil, err
		}
		if n.Hi, err = r.u64(); err != nil {
			return nil, err
		}
		if n.Child, err = r.node(depth + 1); err != nil {
			return nil, err
		}
	case OpProject:
		cnt, err := r.u16()
		if err != nil {
			return nil, err
		}
		if cnt > maxAttrs {
			return nil, fmt.Errorf("query: %d projected attributes", cnt)
		}
		n.Attrs = make([]int, cnt)
		for i := range n.Attrs {
			if r.pos+4 > len(r.data) {
				return nil, fmt.Errorf("query: truncated plan")
			}
			n.Attrs[i] = int(binary.BigEndian.Uint32(r.data[r.pos:]))
			r.pos += 4
		}
		if n.Child, err = r.node(depth + 1); err != nil {
			return nil, err
		}
	case OpJoin:
		m, err := r.u8()
		if err != nil {
			return nil, err
		}
		n.Method = join.Method(m)
		if n.Child, err = r.node(depth + 1); err != nil {
			return nil, err
		}
		if n.Right, err = r.node(depth + 1); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("query: unknown operator %d", op)
	}
	return n, nil
}

// UnmarshalPlan decodes and structurally validates plan bytes received
// from an untrusted client.
func UnmarshalPlan(data []byte) (*Node, error) {
	if len(data) == 0 || len(data) > maxPlanBytes {
		return nil, fmt.Errorf("query: plan of %d bytes", len(data))
	}
	r := planReader{data: data}
	n, err := r.node(0)
	if err != nil {
		return nil, err
	}
	if n == nil {
		return nil, fmt.Errorf("query: empty plan")
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("query: %d trailing plan bytes", len(data)-r.pos)
	}
	if _, err := analyze(n); err != nil {
		return nil, err
	}
	return n, nil
}
