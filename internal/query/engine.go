package query

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"authdb/internal/anscache"
	"authdb/internal/chain"
	"authdb/internal/core"
	"authdb/internal/freshness"
	"authdb/internal/join"
	"authdb/internal/projection"
	"authdb/internal/sigagg"
	"authdb/internal/wire"
)

// FilterShard is the pseudo-shard index under which a relation's
// certified-Bloom-filter epoch is stamped. Re-certifying the filter
// bumps it, so cached BF join answers built against the old filter are
// invalidated exactly like answers built against old data.
const FilterShard = -1

// relView is one relation as the executor sees it: the query server
// plus the owner-certified Bloom filter on its key attribute.
type relView struct {
	name string
	qs   *core.QueryServer

	mu      sync.RWMutex
	fc      *join.FilterCert
	fcEpoch atomic.Uint64
}

// Engine executes plan trees over a catalog of authenticated relations
// and serves the resulting composite answers through an epoch-validated
// cache. It is safe for concurrent use.
type Engine struct {
	mu   sync.RWMutex
	rels map[string]*relView

	par   int
	cache *anscache.Cache

	planQueries atomic.Uint64
	joinProbes  atomic.Uint64
	bfProbes    atomic.Uint64
	bfNegatives atomic.Uint64
	bfFallbacks atomic.Uint64
	projRows    atomic.Uint64
}

// EngineOption configures an Engine.
type EngineOption func(*engineConfig)

type engineConfig struct {
	par        int
	cacheBytes int64
	cacheOff   bool
}

// WithParallelism caps the workers fanned over independent join-probe
// subplans (default GOMAXPROCS).
func WithParallelism(n int) EngineOption {
	return func(c *engineConfig) {
		if n >= 1 {
			c.par = n
		}
	}
}

// WithCacheBytes bounds the plan cache's resident wire bytes.
func WithCacheBytes(n int64) EngineOption {
	return func(c *engineConfig) {
		if n > 0 {
			c.cacheBytes = n
		}
	}
}

// WithoutCache disables the plan answer cache (every ServePlan call
// executes the plan).
func WithoutCache() EngineOption {
	return func(c *engineConfig) { c.cacheOff = true }
}

// NewEngine creates an empty executor; add relations before serving.
func NewEngine(opts ...EngineOption) *Engine {
	cfg := engineConfig{par: runtime.GOMAXPROCS(0), cacheBytes: anscache.DefaultMaxBytes}
	for _, o := range opts {
		o(&cfg)
	}
	e := &Engine{rels: make(map[string]*relView), par: cfg.par}
	if !cfg.cacheOff {
		e.cache = anscache.New(e, anscache.WithMaxBytes(cfg.cacheBytes))
	}
	return e
}

// AddRelation registers a named relation's query server.
func (e *Engine) AddRelation(name string, qs *core.QueryServer) error {
	if name == "" || qs == nil {
		return fmt.Errorf("query: relation needs a name and a server")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.rels[name]; dup {
		return fmt.Errorf("query: duplicate relation %q", name)
	}
	e.rels[name] = &relView{name: name, qs: qs}
	return nil
}

// SetFilter installs (or replaces) the owner-certified Bloom filter for
// a relation's key attribute and bumps its filter epoch, invalidating
// every cached BF join answer built against the previous filter.
func (e *Engine) SetFilter(name string, fc *join.FilterCert) error {
	if fc == nil {
		return fmt.Errorf("query: nil filter certificate")
	}
	rv, err := e.rel(name)
	if err != nil {
		return err
	}
	rv.mu.Lock()
	rv.fc = fc
	rv.fcEpoch.Add(1)
	rv.mu.Unlock()
	return nil
}

// Filter returns the relation's current certified filter (nil if none).
func (e *Engine) Filter(name string) *join.FilterCert {
	rv, err := e.rel(name)
	if err != nil {
		return nil
	}
	rv.mu.RLock()
	defer rv.mu.RUnlock()
	return rv.fc
}

func (e *Engine) rel(name string) (*relView, error) {
	e.mu.RLock()
	rv := e.rels[name]
	e.mu.RUnlock()
	if rv == nil {
		return nil, fmt.Errorf("query: unknown relation %q", name)
	}
	return rv, nil
}

// Relations lists the registered relation names, sorted.
func (e *Engine) Relations() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.rels))
	for n := range e.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ---- anscache.RelEpochSource ----

// DataEpoch satisfies EpochSource; engine stamps are always relation
// scoped, so the unscoped epochs are unused.
func (e *Engine) DataEpoch(int) uint64 { return 0 }

// RelDataEpoch resolves one relation's live shard epoch (or its filter
// epoch for FilterShard). An unknown relation reads as a sentinel no
// stamp can carry, so its entries conservatively invalidate.
func (e *Engine) RelDataEpoch(rel string, shard int) uint64 {
	e.mu.RLock()
	rv := e.rels[rel]
	e.mu.RUnlock()
	if rv == nil {
		return math.MaxUint64
	}
	if shard == FilterShard {
		return rv.fcEpoch.Load()
	}
	if shard < 0 || shard >= rv.qs.Shards() {
		return math.MaxUint64
	}
	return rv.qs.DataEpoch(shard)
}

// ---- execution ----

// Result is one executed plan: the composite answer core (no summary
// tails — those are per-client) and, per touched relation, the oldest
// proof timestamp a cold client's summary tail must reach back to.
type Result struct {
	Comp      *wire.Composite
	RelOldest map[string]int64
}

// Execute runs the plan with the engine's configured parallelism.
func (e *Engine) Execute(n *Node) (*Result, error) {
	r, _, err := e.exec(n, e.par)
	return r, err
}

// ExecuteSerial runs the plan with join probes strictly serialized —
// the baseline the parallel executor is benchmarked against.
func (e *Engine) ExecuteSerial(n *Node) (*Result, error) {
	r, _, err := e.exec(n, 1)
	return r, err
}

func relStampOf(name string, st anscache.Stamp) anscache.RelStamp {
	rs := anscache.RelStamp{Rel: name, Epochs: st.Epochs, Shards: make([]int, len(st.Epochs))}
	for i := range rs.Shards {
		rs.Shards[i] = st.First + i
	}
	return rs
}

func (e *Engine) exec(n *Node, workers int) (*Result, anscache.Stamp, error) {
	var zero anscache.Stamp
	s, err := analyze(n)
	if err != nil {
		return nil, zero, err
	}
	outer, err := e.rel(s.scan.Rel)
	if err != nil {
		return nil, zero, err
	}
	e.planQueries.Add(1)

	// For a join, snapshot the inner relation's full epoch vector (plus
	// the filter epoch) BEFORE any data is read. Bloom-negative probes
	// never touch the inner server, yet an insert anywhere in the inner
	// relation can turn such a non-match into a match — so the stamp
	// must cover every inner shard, and pessimistically: an update
	// landing during execution must read as "stamp stale", never as
	// "stamp current".
	var (
		inner      *relView
		fc         *join.FilterCert
		innerStamp anscache.RelStamp
	)
	if s.jn != nil {
		if inner, err = e.rel(s.jn.Right.Rel); err != nil {
			return nil, zero, err
		}
		inner.mu.RLock()
		fc = inner.fc
		fcEpoch := inner.fcEpoch.Load()
		inner.mu.RUnlock()
		if s.jn.Method == join.BF && fc == nil {
			return nil, zero, fmt.Errorf("query: BF join against %q without a certified filter", inner.name)
		}
		innerStamp = anscache.RelStamp{Rel: inner.name}
		if s.jn.Method == join.BF {
			innerStamp.Shards = append(innerStamp.Shards, FilterShard)
			innerStamp.Epochs = append(innerStamp.Epochs, fcEpoch)
		}
		for i := 0; i < inner.qs.Shards(); i++ {
			innerStamp.Shards = append(innerStamp.Shards, i)
			innerStamp.Epochs = append(innerStamp.Epochs, inner.qs.DataEpoch(i))
		}
	}

	// Outer leaf: one authenticated range scan, with the attribute
	// sideband when the plan projects.
	var (
		outAns *core.Answer
		rows   []core.AttrRow
		stamp  anscache.Stamp
	)
	if s.proj != nil {
		outAns, rows, stamp, err = outer.qs.QueryProj(s.scan.Lo, s.scan.Hi)
	} else {
		outAns, stamp, err = outer.qs.QueryStamped(s.scan.Lo, s.scan.Hi)
	}
	if err != nil {
		return nil, zero, fmt.Errorf("query: outer scan %q: %w", outer.name, err)
	}

	// Residual filter (naive plans only): narrow the joined/projected
	// window; the chain proof still covers the scanned range.
	keep := outAns.Chain.Records
	keepRows := rows
	if s.filter != nil {
		lo := sort.Search(len(keep), func(i int) bool { return keep[i].Key >= s.filter.Lo })
		hi := sort.Search(len(keep), func(i int) bool { return keep[i].Key > s.filter.Hi })
		keep = keep[lo:hi]
		if rows != nil {
			keepRows = rows[lo:hi]
		}
	}

	comp := &wire.Composite{Outer: outAns.Chain}
	relOldest := map[string]int64{outer.name: outAns.OldestSigTS}
	relStamps := []anscache.RelStamp{relStampOf(outer.name, stamp)}

	if s.jn != nil {
		ja, innerOldest, err := e.probe(inner, s.jn.Method, fc, keep, workers)
		if err != nil {
			return nil, zero, err
		}
		comp.Join = ja
		if cur, ok := relOldest[inner.name]; !ok || innerOldest < cur {
			relOldest[inner.name] = innerOldest
		}
		relStamps = append(relStamps, innerStamp)
	}

	if s.proj != nil {
		pans, err := e.project(outer, s.proj.Attrs, keep, keepRows)
		if err != nil {
			return nil, zero, err
		}
		comp.Proj = pans
	}

	return &Result{Comp: comp, RelOldest: relOldest}, anscache.Stamp{Rels: relStamps}, nil
}

// probe resolves each outer key against the inner relation: for BF
// joins a certified-filter negative proves absence without touching the
// server at all; positives (and every BV probe) run a live point scan
// whose chained answer is either the match proof or — on a Bloom false
// positive — the boundary fallback.
func (e *Engine) probe(rv *relView, method join.Method, fc *join.FilterCert,
	outer []*chain.Record, workers int) (*join.Answer, int64, error) {

	ja := &join.Answer{Method: method}
	if method == join.BF {
		ja.FilterTS = fc.TS
	}
	type probeOut struct {
		match  *chain.Answer
		un     *join.UnmatchedProof
		oldest int64
	}
	outs := make([]probeOut, len(outer))
	err := sigagg.ForChunks(len(outer), workers, 1, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			outs[i].oldest = math.MaxInt64
			v := outer[i].Key
			if method == join.BF {
				e.bfProbes.Add(1)
				idx := fc.PF.Find(v)
				if idx < 0 {
					return fmt.Errorf("query: certified filter for %q is empty", rv.name)
				}
				part := &fc.PF.Partitions[idx]
				if !part.Filter.MayContainUint64(uint64(v)) {
					e.bfNegatives.Add(1)
					outs[i].un = &join.UnmatchedProof{RA: v, Partition: part, PartSig: fc.Sigs[idx]}
					continue
				}
			}
			e.joinProbes.Add(1)
			pa, _, err := rv.qs.QueryStamped(v, v)
			if err != nil {
				return fmt.Errorf("query: probe %q key %d: %w", rv.name, v, err)
			}
			outs[i].oldest = pa.OldestSigTS
			if len(pa.Chain.Records) > 0 {
				outs[i].match = pa.Chain
			} else {
				if method == join.BF {
					e.bfFallbacks.Add(1)
				}
				outs[i].un = &join.UnmatchedProof{RA: v, Boundary: pa.Chain}
			}
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	oldest := int64(math.MaxInt64)
	if method == join.BF {
		oldest = fc.TS
	}
	for i := range outs {
		if outs[i].match != nil {
			ja.Matches = append(ja.Matches, outs[i].match)
		}
		if outs[i].un != nil {
			ja.Unmatched = append(ja.Unmatched, *outs[i].un)
		}
		if outs[i].oldest < oldest {
			oldest = outs[i].oldest
		}
	}
	return ja, oldest, nil
}

// project assembles the §3.4 projection section: per-row selected
// values with one aggregate over the owner's attribute-level signatures.
func (e *Engine) project(outer *relView, attrs []int, keep []*chain.Record, rows []core.AttrRow) (*projection.Answer, error) {
	prows := make([]projection.Row, len(keep))
	sigsByRID := make(map[uint64][]sigagg.Signature, len(rows))
	for i := range keep {
		row := rows[i]
		vals := make([][]byte, len(attrs))
		for j, a := range attrs {
			if a >= len(row.Vals) {
				return nil, fmt.Errorf("query: attribute slot %d out of range for key %d (%d slots)",
					a, keep[i].Key, len(row.Vals))
			}
			vals[j] = row.Vals[a]
		}
		prows[i] = projection.Row{RID: row.RID, TS: row.TS, Values: vals}
		sigsByRID[row.RID] = row.Sigs
	}
	e.projRows.Add(uint64(len(prows)))
	return projection.Build(outer.qs.Scheme(), append([]int(nil), attrs...), prows,
		func(rid uint64) ([]sigagg.Signature, error) {
			sigs, ok := sigsByRID[rid]
			if !ok {
				return nil, fmt.Errorf("query: no attribute sideband for rid %d", rid)
			}
			return sigs, nil
		})
}

// ---- serving ----

// ServePlan decodes, executes and encodes one 'J'/'P' plan request,
// serving repeated plans from the epoch-validated cache. It returns the
// pre-encoded composite answer core, the per-client relation summary
// tails, and a release hook that must be called exactly once after the
// bytes are written out.
func (e *Engine) ServePlan(planBytes []byte, since []wire.RelSince) (body, tails []byte, release func(), err error) {
	n, err := UnmarshalPlan(planBytes)
	if err != nil {
		return nil, nil, nil, err
	}
	lo, hi, err := n.Range()
	if err != nil {
		return nil, nil, nil, err
	}
	// Key on the canonical re-encoding, not the received bytes: two
	// encodings of the same tree share one entry.
	key := anscache.Key{Lo: lo, Hi: hi, Plan: string(n.Marshal())}

	if e.cache == nil {
		r, _, err := e.exec(n, e.par)
		if err != nil {
			return nil, nil, nil, err
		}
		buf, err := wire.AppendCompositeCore(wire.GetBuffer(), r.Comp)
		if err != nil {
			wire.PutBuffer(buf)
			return nil, nil, nil, err
		}
		tailBuf, err := e.tails(r, since)
		if err != nil {
			wire.PutBuffer(buf)
			return nil, nil, nil, err
		}
		return buf, tailBuf, func() { wire.PutBuffer(buf); wire.PutBuffer(tailBuf) }, nil
	}

	entry, _, err := e.cache.Do(key, func() (*anscache.Entry, error) {
		r, stamp, err := e.exec(n, e.par)
		if err != nil {
			return nil, err
		}
		data, err := wire.AppendCompositeCore(wire.GetBuffer(), r.Comp)
		if err != nil {
			wire.PutBuffer(data)
			return nil, err
		}
		return &anscache.Entry{Key: key, Value: r, Wire: data, Stamp: stamp, Free: wire.PutBuffer}, nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	res := entry.Value.(*Result)
	tailBuf, err := e.tails(res, since)
	if err != nil {
		entry.Release()
		return nil, nil, nil, err
	}
	return entry.Wire, tailBuf, func() { entry.Release(); wire.PutBuffer(tailBuf) }, nil
}

// tails encodes one summary tail per touched relation, resuming each
// client from the sequence number it already holds.
func (e *Engine) tails(res *Result, since []wire.RelSince) ([]byte, error) {
	names := make([]string, 0, len(res.RelOldest))
	for name := range res.RelOldest {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]wire.RelTail, 0, len(names))
	for _, name := range names {
		rv, err := e.rel(name)
		if err != nil {
			return nil, err
		}
		var sinceSeq uint64
		for _, rs := range since {
			if rs.Name == name {
				sinceSeq = rs.SinceSeq
			}
		}
		out = append(out, wire.RelTail{Rel: name, Summaries: rv.qs.SummariesTail(sinceSeq, res.RelOldest[name])})
	}
	return wire.AppendRelTails(wire.GetBuffer(), out), nil
}

// ServeRelSummaries answers a 'T' request: one relation's summary tail,
// for clients resynchronizing a per-relation freshness stream.
func (e *Engine) ServeRelSummaries(rel string, sinceSeq uint64, oldestTS int64) ([]freshness.Summary, error) {
	rv, err := e.rel(rel)
	if err != nil {
		return nil, err
	}
	return rv.qs.SummariesTail(sinceSeq, oldestTS), nil
}

// Stats are the executor's monotonic counters.
type Stats struct {
	PlanQueries uint64 // plans executed (cache hits not included)
	JoinProbes  uint64 // live point scans against inner relations
	BFProbes    uint64 // outer keys probed through a certified filter
	BFNegatives uint64 // probes answered by a filter negative alone
	BFFallbacks uint64 // false positives that fell back to boundaries
	ProjRows    uint64 // projected rows emitted
	Cache       anscache.Stats
}

// Stats snapshots the counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		PlanQueries: e.planQueries.Load(),
		JoinProbes:  e.joinProbes.Load(),
		BFProbes:    e.bfProbes.Load(),
		BFNegatives: e.bfNegatives.Load(),
		BFFallbacks: e.bfFallbacks.Load(),
		ProjRows:    e.projRows.Load(),
	}
	if e.cache != nil {
		s.Cache = e.cache.Stats()
	}
	return s
}
