package query

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"authdb/internal/core"
	"authdb/internal/join"
	"authdb/internal/projection"
	"authdb/internal/sigagg/xortest"
	"authdb/internal/wire"
)

// fixture is a two-relation catalog: outer "o" in projection mode with
// keys 10,20,…,1000 and two attribute slots, inner "i" holding the
// multiples of 30 — so roughly a third of the outer keys join.
type fixture struct {
	cat          *core.Catalog
	outer, inner *core.Relation
	eng          *Engine
}

func newFixture(t *testing.T, engOpts ...EngineOption) *fixture {
	t.Helper()
	cat, err := core.NewCatalog(xortest.New(), core.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	outer, err := cat.AddRelation("o", nil, []core.DAOption{core.WithAttrSigning()}, []core.Option{core.WithShards(4)})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := cat.AddRelation("i", nil, nil, []core.Option{core.WithShards(4)})
	if err != nil {
		t.Fatal(err)
	}
	var orecs, irecs []*core.Record
	for k := int64(10); k <= 1000; k += 10 {
		orecs = append(orecs, &core.Record{
			Key:   k,
			Attrs: [][]byte{[]byte(fmt.Sprintf("name-%d", k)), []byte(fmt.Sprintf("payload-%d", k))},
		})
		if k%30 == 0 {
			irecs = append(irecs, &core.Record{Key: k, Attrs: [][]byte{[]byte(fmt.Sprintf("inner-%d", k))}})
		}
	}
	for _, p := range []struct {
		rel  *core.Relation
		recs []*core.Record
	}{{outer, orecs}, {inner, irecs}} {
		msg, err := p.rel.DA.Load(p.recs, 100)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.rel.Deliver(msg); err != nil {
			t.Fatal(err)
		}
		if msg, err = p.rel.DA.ClosePeriod(1_000); err != nil {
			t.Fatal(err)
		}
		if err := p.rel.Deliver(msg); err != nil {
			t.Fatal(err)
		}
	}
	eng := NewEngine(append([]EngineOption{WithParallelism(4)}, engOpts...)...)
	if err := eng.AddRelation("o", outer.QS); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddRelation("i", inner.QS); err != nil {
		t.Fatal(err)
	}
	// One bit per key makes Bloom false positives near-certain for some
	// probed non-members, so the boundary fallback path is exercised.
	fc, err := inner.DA.CertifyFilter(8, 1, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetFilter("i", fc); err != nil {
		t.Fatal(err)
	}
	return &fixture{cat: cat, outer: outer, inner: inner, eng: eng}
}

func (fx *fixture) spec(method join.Method) *Spec {
	return &Spec{Rel: "o", Lo: 105, Hi: 695, Attrs: []int{0}, Join: &JoinSpec{Rel: "i", Method: method}}
}

// verifyComposite checks every section of a composite answer the way a
// client would: outer chain + freshness, projection aggregate, join
// coverage with per-key match/non-match proofs.
func (fx *fixture) verifyComposite(t *testing.T, comp *wire.Composite, lo, hi int64, now int64) {
	t.Helper()
	oans := &core.Answer{Chain: comp.Outer, Summaries: fx.outer.QS.SummariesSince(0)}
	if _, err := fx.outer.Verifier.VerifyAnswers([]*core.Answer{oans}, []core.Range{{Lo: lo, Hi: hi}}, now); err != nil {
		t.Fatalf("outer chain: %v", err)
	}
	if comp.Proj != nil {
		if err := projection.Verify(fx.outer.Scheme, fx.outer.Pub, comp.Proj); err != nil {
			t.Fatalf("projection: %v", err)
		}
		if len(comp.Proj.Rows) != len(comp.Outer.Records) {
			t.Fatalf("%d projected rows for %d records", len(comp.Proj.Rows), len(comp.Outer.Records))
		}
	}
	if comp.Join == nil {
		return
	}
	if err := join.Verify(fx.inner.Scheme, fx.inner.Pub, comp.Join); err != nil {
		t.Fatalf("join: %v", err)
	}
	// Coverage: every outer key resolved exactly once, nothing extra.
	resolved := map[int64]int{}
	for _, m := range comp.Join.Matches {
		resolved[m.Lo]++
	}
	for _, up := range comp.Join.Unmatched {
		resolved[up.RA]++
	}
	for _, rec := range comp.Outer.Records {
		if resolved[rec.Key] != 1 {
			t.Fatalf("outer key %d resolved %d times", rec.Key, resolved[rec.Key])
		}
		delete(resolved, rec.Key)
	}
	if len(resolved) != 0 {
		t.Fatalf("join proofs for keys outside the outer answer: %v", resolved)
	}
}

func TestSelectProjectJoinBF(t *testing.T) {
	fx := newFixture(t)
	n, err := Plan(fx.spec(join.BF), true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fx.eng.Execute(n)
	if err != nil {
		t.Fatal(err)
	}
	fx.verifyComposite(t, res.Comp, 105, 695, 1_000)
	if got := len(res.Comp.Outer.Records); got != 59 { // 110..690 step 10
		t.Fatalf("%d outer records, want 59", got)
	}
	if got := len(res.Comp.Join.Matches); got != 20 { // 120..690 step 30
		t.Fatalf("%d matches, want 20", got)
	}
	st := fx.eng.Stats()
	if st.BFProbes != 59 || st.BFNegatives == 0 || st.BFFallbacks == 0 {
		t.Fatalf("BF counters probes=%d negatives=%d fallbacks=%d; want 59/>0/>0", st.BFProbes, st.BFNegatives, st.BFFallbacks)
	}
	// Negatives skip the inner server entirely.
	if st.JoinProbes != st.BFProbes-st.BFNegatives {
		t.Fatalf("join probes %d, want %d", st.JoinProbes, st.BFProbes-st.BFNegatives)
	}
	if st.ProjRows != 59 {
		t.Fatalf("%d projected rows counted", st.ProjRows)
	}
	// Projection selected slot 0 of each record.
	for i, rec := range res.Comp.Outer.Records {
		want := fmt.Sprintf("name-%d", rec.Key)
		if !bytes.Equal(res.Comp.Proj.Rows[i].Values[0], []byte(want)) {
			t.Fatalf("row %d: %q, want %q", i, res.Comp.Proj.Rows[i].Values[0], want)
		}
	}
}

func TestSelectJoinBVSerialMatchesParallel(t *testing.T) {
	fx := newFixture(t)
	spec := fx.spec(join.BV)
	spec.Attrs = nil
	n, err := Plan(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	par, err := fx.eng.Execute(n)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := fx.eng.ExecuteSerial(n)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par.Comp, ser.Comp) {
		t.Fatal("parallel and serial executors disagree")
	}
	fx.verifyComposite(t, par.Comp, 105, 695, 1_000)
	for _, up := range par.Comp.Join.Unmatched {
		if up.Boundary == nil {
			t.Fatalf("BV non-match %d without boundary", up.RA)
		}
	}
}

func TestNaivePlanSameJoinAsPushdown(t *testing.T) {
	fx := newFixture(t)
	spec := fx.spec(join.BV)
	spec.Attrs = nil
	pd, err := Plan(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	nv, err := Plan(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	a, err := fx.eng.Execute(pd)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fx.eng.Execute(nv)
	if err != nil {
		t.Fatal(err)
	}
	// The naive plan scans the whole domain, so its outer proof is wider,
	// but the join must resolve exactly the same filtered key set.
	if len(b.Comp.Outer.Records) != 100 {
		t.Fatalf("naive scan returned %d records, want the full 100", len(b.Comp.Outer.Records))
	}
	if !reflect.DeepEqual(a.Comp.Join, b.Comp.Join) {
		t.Fatal("pushdown and naive plans joined different key sets")
	}
}

func TestPlanCodec(t *testing.T) {
	specs := []*Spec{
		{Rel: "o", Lo: 1, Hi: 2},
		{Rel: "o", Lo: -5, Hi: 5, Attrs: []int{1, 0}},
		{Rel: "o", Lo: 1, Hi: 9, Join: &JoinSpec{Rel: "i", Method: join.BF}},
		{Rel: "o", Lo: 1, Hi: 9, Attrs: []int{0}, Join: &JoinSpec{Rel: "i", Method: join.BV}},
	}
	for _, spec := range specs {
		for _, pushdown := range []bool{true, false} {
			n, err := Plan(spec, pushdown)
			if err != nil {
				t.Fatal(err)
			}
			data := n.Marshal()
			got, err := UnmarshalPlan(data)
			if err != nil {
				t.Fatalf("%+v: %v", spec, err)
			}
			if !reflect.DeepEqual(got, n) {
				t.Fatalf("plan round trip mismatch:\n got %+v\nwant %+v", got, n)
			}
			if !bytes.Equal(got.Marshal(), data) {
				t.Fatal("re-encoding is not canonical")
			}
			lo, hi, err := got.Range()
			if err != nil || lo != spec.Lo || hi != spec.Hi {
				t.Fatalf("Range() = [%d,%d] %v, want [%d,%d]", lo, hi, err, spec.Lo, spec.Hi)
			}
		}
	}
	for _, bad := range [][]byte{
		nil,
		{0},
		{byte(OpScan), 0, 0}, // empty relation name
		{byte(OpFilter)},     // truncated
		append(specs[0].mustPlan(t).Marshal(), 7), // trailing bytes
	} {
		if _, err := UnmarshalPlan(bad); err == nil {
			t.Fatalf("bad plan %v accepted", bad)
		}
	}
	// A filter above a filter (or any misordered tree) is rejected even
	// though each node is well formed.
	twisted := &Node{Op: OpFilter, Lo: 1, Hi: 2, Child: &Node{Op: OpFilter, Lo: 1, Hi: 2,
		Child: &Node{Op: OpScan, Rel: "o", Lo: 0, Hi: 9}}}
	if _, err := UnmarshalPlan(twisted.Marshal()); err == nil {
		t.Fatal("duplicate filter accepted")
	}
}

func (s *Spec) mustPlan(t *testing.T) *Node {
	t.Helper()
	n, err := Plan(s, true)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// decodeServed reassembles what a client receives: the cached core and
// the per-client tails arrive as one frame payload.
func decodeServed(t *testing.T, body, tails []byte) *wire.Composite {
	t.Helper()
	payload := append(append([]byte(nil), body...), tails...)
	comp, err := wire.DecodeComposite(payload)
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

// A cached join answer must be invalidated by an update to the INNER
// relation even when the affected key was answered by a Bloom negative
// that never touched the inner server.
func TestCacheInvalidationOnInnerUpdate(t *testing.T) {
	fx := newFixture(t)
	spec := fx.spec(join.BF)
	plan := spec.mustPlan(t).Marshal()

	unmatchedKeys := func(comp *wire.Composite) map[int64]bool {
		out := map[int64]bool{}
		for _, up := range comp.Join.Unmatched {
			out[up.RA] = true
		}
		return out
	}

	body, tails, release, err := fx.eng.ServePlan(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	first := decodeServed(t, body, tails)
	release()
	if !unmatchedKeys(first)[200] {
		t.Fatal("key 200 should start unmatched")
	}
	if len(first.Tails) != 2 || first.Tails[0].Rel != "i" || first.Tails[1].Rel != "o" {
		t.Fatalf("tails %+v", first.Tails)
	}
	if len(first.Tails[0].Summaries) == 0 || len(first.Tails[1].Summaries) == 0 {
		t.Fatal("cold client got empty summary tails")
	}

	// Same plan again: a pure cache hit, and a caught-up client's tail
	// shrinks to the echoed stream tip (rollback evidence).
	tip := first.Tails[0].Summaries[len(first.Tails[0].Summaries)-1]
	body, tails, release, err = fx.eng.ServePlan(plan, []wire.RelSince{{Name: "i", SinceSeq: tip.Seq}})
	if err != nil {
		t.Fatal(err)
	}
	again := decodeServed(t, body, tails)
	release()
	if got := again.Tails[0].Summaries; len(got) != 1 || got[0].Seq != tip.Seq {
		t.Fatalf("caught-up client's inner tail = %d summaries, want the echoed tip", len(got))
	}
	st := fx.eng.Stats()
	if st.Cache.Hits != 1 || st.Cache.Built != 1 {
		t.Fatalf("cache hits=%d built=%d, want 1/1", st.Cache.Hits, st.Cache.Built)
	}

	// Insert key 200 into the inner relation and re-certify the filter:
	// the cached answer (which proved 200 absent) must be rebuilt and now
	// match it.
	msg, err := fx.inner.DA.Insert(&core.Record{Key: 200, Attrs: [][]byte{[]byte("late")}}, 1_500)
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.inner.Deliver(msg); err != nil {
		t.Fatal(err)
	}
	fc, err := fx.inner.DA.CertifyFilter(8, 1, 1_500)
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.eng.SetFilter("i", fc); err != nil {
		t.Fatal(err)
	}
	body, tails, release, err = fx.eng.ServePlan(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	after := decodeServed(t, body, tails)
	release()
	if unmatchedKeys(after)[200] {
		t.Fatal("stale non-match for key 200 served after inner insert")
	}
	found := false
	for _, m := range after.Join.Matches {
		if m.Lo == 200 {
			found = true
		}
	}
	if !found {
		t.Fatal("key 200 not matched after inner insert")
	}
	if st = fx.eng.Stats(); st.Cache.Built != 2 {
		t.Fatalf("cache built=%d after inner update, want 2", st.Cache.Built)
	}
	fx.verifyComposite(t, &wire.Composite{Outer: after.Outer, Proj: after.Proj, Join: after.Join}, 105, 695, 1_500)
}

// A filter re-certification ALONE (no data change) also invalidates
// cached BF answers — they embed partition proofs under the old cert.
func TestCacheInvalidationOnFilterSwap(t *testing.T) {
	fx := newFixture(t)
	plan := fx.spec(join.BF).mustPlan(t).Marshal()
	for i := 0; i < 2; i++ {
		_, _, release, err := fx.eng.ServePlan(plan, nil)
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	if st := fx.eng.Stats(); st.Cache.Hits != 1 {
		t.Fatalf("expected a warm hit, got %+v", st.Cache)
	}
	fc, err := fx.inner.DA.CertifyFilter(8, 1, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.eng.SetFilter("i", fc); err != nil {
		t.Fatal(err)
	}
	body, tails, release, err := fx.eng.ServePlan(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	comp := decodeServed(t, body, tails)
	release()
	if comp.Join.FilterTS != 2_000 {
		t.Fatalf("FilterTS %d after swap, want 2000", comp.Join.FilterTS)
	}
	if st := fx.eng.Stats(); st.Cache.Built != 2 {
		t.Fatalf("cache built=%d after filter swap, want 2", st.Cache.Built)
	}
}

// Race target: concurrent plan serving against live updates to both
// relations plus filter swaps. Run under -race in CI.
func TestConcurrentPlansAndUpdates(t *testing.T) {
	fx := newFixture(t)
	plans := [][]byte{
		fx.spec(join.BF).mustPlan(t).Marshal(),
		fx.spec(join.BV).mustPlan(t).Marshal(),
		(&Spec{Rel: "o", Lo: 205, Hi: 495, Attrs: []int{0, 1}}).mustPlan(t).Marshal(),
		(&Spec{Rel: "i", Lo: 0, Hi: 900}).mustPlan(t).Marshal(),
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				body, tails, release, err := fx.eng.ServePlan(plans[(w+i)%len(plans)], nil)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := wire.DecodeComposite(append(append([]byte(nil), body...), tails...)); err != nil {
					t.Error(err)
				}
				release()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ts := int64(2_000)
		for i := 0; i < 15; i++ {
			ts += 10
			msg, err := fx.outer.DA.Update(int64(10*(i%100)+10), [][]byte{[]byte("x"), []byte("y")}, ts)
			if err != nil {
				t.Error(err)
				return
			}
			if err := fx.outer.Deliver(msg); err != nil {
				t.Error(err)
				return
			}
			if i%5 != 0 {
				continue
			}
			if msg, err = fx.inner.DA.Insert(&core.Record{Key: int64(1_000 + 10*i), Attrs: [][]byte{[]byte("n")}}, ts); err != nil {
				t.Error(err)
				return
			}
			if err := fx.inner.Deliver(msg); err != nil {
				t.Error(err)
				return
			}
			fc, err := fx.inner.DA.CertifyFilter(8, 4, ts)
			if err != nil {
				t.Error(err)
				return
			}
			if err := fx.eng.SetFilter("i", fc); err != nil {
				t.Error(err)
			}
		}
	}()
	wg.Wait()
}

func TestServeRelSummaries(t *testing.T) {
	fx := newFixture(t)
	sums, err := fx.eng.ServeRelSummaries("i", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) == 0 {
		t.Fatal("no summaries for a closed period")
	}
	if _, err := fx.eng.ServeRelSummaries("ghost", 0, 0); err == nil {
		t.Fatal("unknown relation accepted")
	}
}

func TestUnknownRelationAndMissingFilter(t *testing.T) {
	fx := newFixture(t)
	if _, err := fx.eng.Execute((&Spec{Rel: "ghost", Lo: 0, Hi: 1}).mustPlan(t)); err == nil {
		t.Fatal("unknown outer relation accepted")
	}
	spec := &Spec{Rel: "i", Lo: 0, Hi: 900, Join: &JoinSpec{Rel: "o", Method: join.BF}}
	if _, err := fx.eng.Execute(spec.mustPlan(t)); err == nil {
		t.Fatal("BF join without a certified filter accepted")
	}
}
