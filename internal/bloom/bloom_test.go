package bloom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := NewForCapacity(1000, 8)
	for i := 0; i < 1000; i++ {
		f.AddUint64(uint64(i * 3))
	}
	for i := 0; i < 1000; i++ {
		if !f.MayContainUint64(uint64(i * 3)) {
			t.Fatalf("false negative for %d", i*3)
		}
	}
}

func TestFPRateNearModel(t *testing.T) {
	const n = 5000
	f := NewForCapacity(n, 8)
	for i := 0; i < n; i++ {
		f.AddUint64(uint64(i))
	}
	rng := rand.New(rand.NewSource(42))
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		v := uint64(n) + uint64(rng.Int63n(1<<40))
		if f.MayContainUint64(v) {
			fp++
		}
	}
	got := float64(fp) / probes
	want := f.FPRate()
	if got > 3*want+0.01 {
		t.Fatalf("empirical FP rate %.4f far above model %.4f", got, want)
	}
}

func TestFPRateEquation(t *testing.T) {
	// Eq. 1 at optimal k reduces to 0.6185^(m/b).
	m, b := uint64(8000), 1000
	k := OptimalK(m, b)
	eq1 := FPRate(m, b, k)
	closed := FPRateOptimal(m, b)
	if math.Abs(eq1-closed) > 0.01 {
		t.Fatalf("Eq.1 %.4f vs closed form %.4f", eq1, closed)
	}
	// Paper's number: m/IB = 8 gives FP = 0.0216.
	if math.Abs(closed-0.0216) > 0.002 {
		t.Fatalf("FP at 8 bits/key = %.4f, paper says 0.0216", closed)
	}
}

func TestOptimalK(t *testing.T) {
	if k := OptimalK(8000, 1000); k != 6 {
		t.Fatalf("OptimalK(8000,1000) = %d, want 6 (8·ln2 ≈ 5.5 → 6)", k)
	}
	if k := OptimalK(10, 0); k != 1 {
		t.Fatalf("OptimalK with n=0 must be 1, got %d", k)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := NewForCapacity(100, 10)
	for i := 0; i < 100; i++ {
		f.AddUint64(uint64(i * 7))
	}
	g, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(g) {
		t.Fatal("round-trip changed the filter")
	}
	if f.Digest() != g.Digest() {
		t.Fatal("round-trip changed the digest")
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated input must fail")
	}
	f := New(64, 2)
	data := f.Marshal()
	if _, err := Unmarshal(data[:len(data)-1]); err == nil {
		t.Fatal("short input must fail")
	}
}

func TestDigestBindsContents(t *testing.T) {
	f := New(128, 3)
	g := New(128, 3)
	f.AddUint64(1)
	g.AddUint64(2)
	if f.Digest() == g.Digest() {
		t.Fatal("different contents, same digest")
	}
}

func TestQuickNoFalseNegative(t *testing.T) {
	prop := func(keys []uint64) bool {
		f := NewForCapacity(len(keys)+1, 8)
		for _, k := range keys {
			f.AddUint64(k)
		}
		for _, k := range keys {
			if !f.MayContainUint64(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildPartitioned(t *testing.T) {
	// 20 distinct values, 4 per partition -> 5 partitions.
	keys := make([]int64, 0, 40)
	for i := 0; i < 20; i++ {
		keys = append(keys, int64(i*10), int64(i*10)) // duplicates collapse
	}
	pf, err := BuildPartitioned(keys, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pf.P() != 5 {
		t.Fatalf("p = %d, want 5", pf.P())
	}
	if pf.Distinct() != 20 {
		t.Fatalf("IB = %d, want 20", pf.Distinct())
	}
	for i := 0; i < 20; i++ {
		if !pf.MayContain(int64(i * 10)) {
			t.Fatalf("false negative for %d", i*10)
		}
	}
}

func TestPartitionedFindCoversDomain(t *testing.T) {
	pf, err := BuildPartitioned([]int64{10, 20, 30, 40, 50, 60}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Every probe value maps to exactly one partition whose range holds it.
	for _, v := range []int64{-100, 0, 10, 15, 29, 30, 55, 60, 1000} {
		idx := pf.Find(v)
		if idx < 0 {
			t.Fatalf("Find(%d) = -1", v)
		}
		p := pf.Partitions[idx]
		if v < p.Lo || v >= p.Hi {
			t.Fatalf("Find(%d) -> partition [%d,%d)", v, p.Lo, p.Hi)
		}
	}
}

func TestPartitionBoundariesContiguous(t *testing.T) {
	pf, err := BuildPartitioned([]int64{1, 2, 3, 4, 5, 6, 7}, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < pf.P(); i++ {
		if pf.Partitions[i-1].Hi != pf.Partitions[i].Lo {
			t.Fatalf("gap between partitions %d and %d", i-1, i)
		}
	}
	if pf.Partitions[0].Lo != minInt64 || pf.Partitions[pf.P()-1].Hi != maxInt64 {
		t.Fatal("partitions must cover the whole domain")
	}
}

func TestRebuildPartitionAfterDelete(t *testing.T) {
	keys := []int64{10, 20, 30, 40}
	pf, err := BuildPartitioned(keys, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Delete 20, rebuild its partition from the remaining keys.
	remaining := []int64{10, 30, 40}
	idx := pf.Find(20)
	old := pf.Partitions[idx].Digest()
	if err := pf.RebuildPartition(idx, remaining); err != nil {
		t.Fatal(err)
	}
	if pf.Partitions[idx].Digest() == old {
		t.Fatal("rebuild must change the partition digest")
	}
	if !pf.MayContain(10) {
		t.Fatal("false negative after rebuild")
	}
	if err := pf.RebuildPartition(99, remaining); err == nil {
		t.Fatal("out-of-range partition index must fail")
	}
}

func TestPartitionDigestBindsBoundaries(t *testing.T) {
	f := New(64, 2)
	p1 := Partition{Lo: 0, Hi: 10, Filter: f}
	p2 := Partition{Lo: 0, Hi: 20, Filter: f}
	if p1.Digest() == p2.Digest() {
		t.Fatal("partition digest must bind the range")
	}
}

func TestEmptyPartitionedFilter(t *testing.T) {
	pf, err := BuildPartitioned(nil, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pf.P() != 0 {
		t.Fatalf("p = %d, want 0", pf.P())
	}
	if pf.Find(5) != -1 {
		t.Fatal("Find on empty filter must return -1")
	}
	if pf.MayContain(5) {
		t.Fatal("empty filter cannot contain anything")
	}
}

func TestBuildPartitionedRejectsBadArgs(t *testing.T) {
	if _, err := BuildPartitioned([]int64{1}, 0, 8); err == nil {
		t.Fatal("valuesPerPartition=0 must fail")
	}
}
