package bloom

import (
	"math/rand"
	"testing"
)

func BenchmarkAdd(b *testing.B) {
	f := NewForCapacity(1_000_000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AddUint64(uint64(i))
	}
}

func BenchmarkMayContain(b *testing.B) {
	f := NewForCapacity(100_000, 8)
	for i := 0; i < 100_000; i++ {
		f.AddUint64(uint64(i * 3))
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContainUint64(uint64(rng.Int63()))
	}
}

func BenchmarkBuildPartitioned3425(b *testing.B) {
	// The §5.5 S.B filter: 3425 distinct values, IB/p = 4, m/IB = 8.
	keys := make([]int64, 3425)
	for i := range keys {
		keys[i] = int64(i * 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildPartitioned(keys, 4, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionedProbe(b *testing.B) {
	keys := make([]int64, 3425)
	for i := range keys {
		keys[i] = int64(i * 7)
	}
	pf, err := BuildPartitioned(keys, 4, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pf.MayContain(rng.Int63n(24_000))
	}
}

func BenchmarkRebuildPartition(b *testing.B) {
	// The per-deletion maintenance cost that partitioning bounds.
	keys := make([]int64, 3425)
	for i := range keys {
		keys[i] = int64(i * 7)
	}
	pf, err := BuildPartitioned(keys, 4, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pf.RebuildPartition(i%pf.P(), keys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDigest(b *testing.B) {
	f := NewForCapacity(1000, 8)
	for i := 0; i < 1000; i++ {
		f.AddUint64(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Digest()
	}
}
