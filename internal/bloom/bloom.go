// Package bloom implements the Bloom filters used by the equi-join
// verification mechanism of Section 3.5: plain m-bit/k-hash filters with
// the false-positive model of Eq. 1, plus certified partitioned filters
// over a sorted join attribute.
package bloom

import (
	"encoding/binary"
	"fmt"
	"math"

	"authdb/internal/digest"
)

// Filter is an m-bit Bloom filter with k hash functions. The k indexes
// are derived by double hashing from two independent 64-bit values, a
// standard construction with the same asymptotic FP behaviour as k
// independent hashes.
type Filter struct {
	bits []uint64
	m    uint64
	k    int
	n    int // number of inserted keys
}

// New creates a filter with m bits and k hash functions.
func New(m uint64, k int) *Filter {
	if m == 0 {
		m = 1
	}
	if k < 1 {
		k = 1
	}
	return &Filter{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

// NewForCapacity creates a filter sized for n keys at bitsPerKey bits per
// key, with the FP-optimal number of hash functions k = (m/n)·ln2.
func NewForCapacity(n int, bitsPerKey float64) *Filter {
	if n < 1 {
		n = 1
	}
	m := uint64(math.Ceil(float64(n) * bitsPerKey))
	k := OptimalK(m, n)
	return New(m, k)
}

// OptimalK returns the FP-minimizing hash count k = (m/n)·ln2, at least 1.
func OptimalK(m uint64, n int) int {
	if n <= 0 {
		return 1
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return k
}

// M returns the filter size in bits.
func (f *Filter) M() uint64 { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// N returns the number of keys inserted so far.
func (f *Filter) N() int { return f.n }

// SizeBytes returns the in-VO size of the filter bit array: ceil(m/8),
// matching the paper's m/8 accounting (the in-memory word array may be
// slightly larger).
func (f *Filter) SizeBytes() int { return int((f.m + 7) / 8) }

func hash2(key []byte) (uint64, uint64) {
	d := digest.SumConcat([]byte("bloom"), key)
	return binary.BigEndian.Uint64(d[0:8]), binary.BigEndian.Uint64(d[8:16])
}

// Add inserts key into the filter.
func (f *Filter) Add(key []byte) {
	h1, h2 := hash2(key)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.n++
}

// MayContain reports whether key might be in the filter. False positives
// are possible; false negatives are not.
func (f *Filter) MayContain(key []byte) bool {
	h1, h2 := hash2(key)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// AddUint64 inserts a 64-bit key.
func (f *Filter) AddUint64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	f.Add(b[:])
}

// MayContainUint64 tests a 64-bit key.
func (f *Filter) MayContainUint64(v uint64) bool {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return f.MayContain(b[:])
}

// FPRate returns the expected false-positive rate of this filter given
// its current load, per Eq. 1: (1 - e^{-kb/m})^k.
func (f *Filter) FPRate() float64 {
	return FPRate(f.m, f.n, f.k)
}

// FPRate evaluates Eq. 1 for an m-bit filter holding b keys with k
// hashes.
func FPRate(m uint64, b, k int) float64 {
	if m == 0 {
		return 1
	}
	return math.Pow(1-math.Exp(-float64(k)*float64(b)/float64(m)), float64(k))
}

// FPRateOptimal returns the paper's closed form 0.6185^(m/b) for a filter
// configured with the optimal k.
func FPRateOptimal(m uint64, b int) float64 {
	if b == 0 {
		return 0
	}
	return math.Pow(0.6185, float64(m)/float64(b))
}

// Marshal serializes the filter (header + bit array) for certification
// and transmission in a VO.
func (f *Filter) Marshal() []byte {
	out := make([]byte, 24+len(f.bits)*8)
	binary.BigEndian.PutUint64(out[0:8], f.m)
	binary.BigEndian.PutUint64(out[8:16], uint64(f.k))
	binary.BigEndian.PutUint64(out[16:24], uint64(f.n))
	for i, w := range f.bits {
		binary.BigEndian.PutUint64(out[24+i*8:], w)
	}
	return out
}

// Unmarshal reconstructs a filter serialized by Marshal.
func Unmarshal(data []byte) (*Filter, error) {
	if len(data) < 24 {
		return nil, fmt.Errorf("bloom: truncated filter (%d bytes)", len(data))
	}
	m := binary.BigEndian.Uint64(data[0:8])
	k := int(binary.BigEndian.Uint64(data[8:16]))
	n := int(binary.BigEndian.Uint64(data[16:24]))
	words := int((m + 63) / 64)
	if len(data) != 24+words*8 {
		return nil, fmt.Errorf("bloom: filter length %d inconsistent with m=%d", len(data), m)
	}
	f := New(m, k)
	f.n = n
	for i := range f.bits {
		f.bits[i] = binary.BigEndian.Uint64(data[24+i*8:])
	}
	return f, nil
}

// Digest returns the certification digest of the filter contents.
func (f *Filter) Digest() digest.Digest {
	return digest.Sum(f.Marshal())
}

// Equal reports whether two filters have identical parameters and bits.
func (f *Filter) Equal(g *Filter) bool {
	if f.m != g.m || f.k != g.k || f.n != g.n || len(f.bits) != len(g.bits) {
		return false
	}
	for i := range f.bits {
		if f.bits[i] != g.bits[i] {
			return false
		}
	}
	return true
}
