package bloom

import (
	"fmt"
	"sort"

	"authdb/internal/digest"
)

// Partition is one horizontal range of the join attribute with its own
// Bloom filter, as in Figure 3 of the paper. The range is [Lo, Hi): a key
// v belongs to this partition iff Lo <= v < Hi.
type Partition struct {
	Lo, Hi int64
	Filter *Filter
}

// Digest returns the certification digest of the partition: boundaries
// plus filter contents. Binding the boundaries prevents the server from
// presenting a filter for the wrong range.
func (p *Partition) Digest() digest.Digest {
	w := digest.NewWriter(64 + p.Filter.SizeBytes())
	w.PutInt64(p.Lo)
	w.PutInt64(p.Hi)
	w.PutBytes(p.Filter.Marshal())
	return w.Sum()
}

// PartitionedFilter splits a sorted attribute domain into p partitions,
// each with its own Bloom filter (Section 3.5). Finer partitions lower
// the reconstruction cost after deletions, at the price of more
// partition boundaries in the VO.
type PartitionedFilter struct {
	Partitions []Partition
	distinct   int // IB: number of distinct values covered
	bitsPerKey float64
}

// BuildPartitioned constructs a partitioned filter over the distinct
// values of the (not necessarily sorted or deduplicated) keys, with
// valuesPerPartition distinct values per partition (the paper's IB/p) and
// bitsPerKey filter bits per distinct value (the paper's m/IB).
func BuildPartitioned(keys []int64, valuesPerPartition int, bitsPerKey float64) (*PartitionedFilter, error) {
	if valuesPerPartition < 1 {
		return nil, fmt.Errorf("bloom: valuesPerPartition must be >= 1, got %d", valuesPerPartition)
	}
	distinct := distinctSorted(keys)
	pf := &PartitionedFilter{distinct: len(distinct), bitsPerKey: bitsPerKey}
	if len(distinct) == 0 {
		return pf, nil
	}
	for i := 0; i < len(distinct); i += valuesPerPartition {
		j := i + valuesPerPartition
		if j > len(distinct) {
			j = len(distinct)
		}
		chunk := distinct[i:j]
		f := NewForCapacity(len(chunk), bitsPerKey)
		for _, v := range chunk {
			f.AddUint64(uint64(v))
		}
		lo := chunk[0]
		var hi int64
		if j < len(distinct) {
			hi = distinct[j]
		} else {
			hi = maxInt64
		}
		if i == 0 {
			lo = minInt64
		}
		pf.Partitions = append(pf.Partitions, Partition{Lo: lo, Hi: hi, Filter: f})
	}
	return pf, nil
}

const (
	maxInt64 = int64(^uint64(0) >> 1)
	minInt64 = -maxInt64 - 1
)

func distinctSorted(keys []int64) []int64 {
	if len(keys) == 0 {
		return nil
	}
	s := make([]int64, len(keys))
	copy(s, keys)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// P returns the number of partitions.
func (pf *PartitionedFilter) P() int { return len(pf.Partitions) }

// Distinct returns IB, the number of distinct covered values.
func (pf *PartitionedFilter) Distinct() int { return pf.distinct }

// Find returns the index of the partition whose range covers v, or -1 if
// the filter is empty.
func (pf *PartitionedFilter) Find(v int64) int {
	if len(pf.Partitions) == 0 {
		return -1
	}
	idx := sort.Search(len(pf.Partitions), func(i int) bool {
		return pf.Partitions[i].Hi > v
	})
	if idx == len(pf.Partitions) {
		return len(pf.Partitions) - 1
	}
	return idx
}

// MayContain probes the partition covering v.
func (pf *PartitionedFilter) MayContain(v int64) bool {
	idx := pf.Find(v)
	if idx < 0 {
		return false
	}
	return pf.Partitions[idx].Filter.MayContainUint64(uint64(v))
}

// Digests returns the per-partition certification digests, which the data
// aggregator signs (one signature per partition, aggregatable).
func (pf *PartitionedFilter) Digests() []digest.Digest {
	ds := make([]digest.Digest, len(pf.Partitions))
	for i := range pf.Partitions {
		ds[i] = pf.Partitions[i].Digest()
	}
	return ds
}

// RebuildPartition reconstructs partition idx from the current distinct
// values in [Lo, Hi). This is the per-deletion maintenance cost the
// partitioning bounds: only one partition's filter is recomputed.
func (pf *PartitionedFilter) RebuildPartition(idx int, keys []int64) error {
	if idx < 0 || idx >= len(pf.Partitions) {
		return fmt.Errorf("bloom: partition %d out of range", idx)
	}
	part := &pf.Partitions[idx]
	var inRange []int64
	for _, v := range distinctSorted(keys) {
		if v >= part.Lo && v < part.Hi {
			inRange = append(inRange, v)
		}
	}
	n := len(inRange)
	if n == 0 {
		n = 1
	}
	f := NewForCapacity(n, pf.bitsPerKey)
	for _, v := range inRange {
		f.AddUint64(uint64(v))
	}
	part.Filter = f
	return nil
}
