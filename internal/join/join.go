// Package join implements the equi-join verification of Section 3.5 for
// σ(R) ⋈_{R.A=S.B} S.
//
// Matched R records are proven like selections σ_{B=r.A}(S) via
// signature chaining. For unmatched R records two mechanisms exist:
//
//   - BV (the prior art of Narasimha & Tsudik): return the boundary S.B
//     values enclosing r.A, anchored on a chained S signature. Duplicate
//     boundaries across consecutive unmatched records are elided.
//   - BF (this paper's contribution): return certified partitioned Bloom
//     filters on S.B. A negative probe proves non-membership outright; a
//     false positive falls back to a BV-style boundary proof. Eq. 3
//     models the resulting VO size and Eq. 4/Fig. 4 the configurations
//     where BF beats BV.
//
// The package provides both the fully verifiable protocol (Build/Verify)
// and a crypto-free size analyzer used to regenerate Figure 11.
package join

import (
	"fmt"
	"sort"

	"authdb/internal/bloom"
	"authdb/internal/chain"
	"authdb/internal/digest"
	"authdb/internal/sigagg"
)

// Method selects the unmatched-record proof mechanism.
type Method int

const (
	// BV proves unmatched records with boundary values.
	BV Method = iota
	// BF proves unmatched records with certified Bloom filters.
	BF
)

func (m Method) String() string {
	if m == BF {
		return "BF"
	}
	return "BV"
}

// Relation is an authenticated relation sorted on the join attribute,
// with chained signatures (duplicates allowed — the chain references
// RIDs).
type Relation struct {
	Recs []*chain.Record    // sorted by (Key, RID)
	Sigs []sigagg.Signature // parallel to Recs
}

// BuildRelation sorts and chain-signs the records.
func BuildRelation(scheme sigagg.Scheme, priv sigagg.PrivateKey, recs []*chain.Record) (*Relation, error) {
	// The Relation retains this slice, so always copy; only the sort is
	// skipped when the refs already arrive in chain order (workload
	// generators emit them sorted).
	sorted := make([]*chain.Record, len(recs))
	copy(sorted, recs)
	if !refsAscending(sorted) {
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Ref().Less(sorted[j].Ref()) })
	}
	rel := &Relation{Recs: sorted, Sigs: make([]sigagg.Signature, len(sorted))}
	for i, r := range sorted {
		left, right := chain.MinRef, chain.MaxRef
		if i > 0 {
			left = sorted[i-1].Ref()
		}
		if i < len(sorted)-1 {
			right = sorted[i+1].Ref()
		}
		d := chain.Digest(r, left, right)
		sig, err := scheme.Sign(priv, d[:])
		if err != nil {
			return nil, fmt.Errorf("join: sign rid %d: %w", r.RID, err)
		}
		rel.Sigs[i] = sig
	}
	return rel, nil
}

// refsAscending reports whether recs are already in (Key, RID) order.
func refsAscending(recs []*chain.Record) bool {
	for i := 1; i < len(recs); i++ {
		if recs[i].Ref().Less(recs[i-1].Ref()) {
			return false
		}
	}
	return true
}

// Keys returns the (non-distinct) join-attribute values in order.
func (rel *Relation) Keys() []int64 {
	out := make([]int64, len(rel.Recs))
	for i, r := range rel.Recs {
		out[i] = r.Key
	}
	return out
}

// neighbours returns the index range [lo, hi) of records with Key == v.
func (rel *Relation) equalRange(v int64) (int, int) {
	lo := sort.Search(len(rel.Recs), func(i int) bool { return rel.Recs[i].Key >= v })
	hi := sort.Search(len(rel.Recs), func(i int) bool { return rel.Recs[i].Key > v })
	return lo, hi
}

// selectEq builds the chained selection answer for σ_{B=v}(S).
func (rel *Relation) selectEq(scheme sigagg.Scheme, v int64) (*chain.Answer, error) {
	lo, hi := rel.equalRange(v)
	a := &chain.Answer{Lo: v, Hi: v, Left: chain.MinRef, Right: chain.MaxRef}
	var sigs []sigagg.Signature
	if lo < hi { // matches exist
		a.Records = rel.Recs[lo:hi]
		sigs = rel.Sigs[lo:hi]
		if lo > 0 {
			a.Left = rel.Recs[lo-1].Ref()
		}
		if hi < len(rel.Recs) {
			a.Right = rel.Recs[hi].Ref()
		}
	} else if lo > 0 { // empty: anchor on the predecessor
		a.Anchor = rel.Recs[lo-1]
		a.AnchorLeft = chain.MinRef
		if lo-1 > 0 {
			a.AnchorLeft = rel.Recs[lo-2].Ref()
		}
		a.Right = chain.MaxRef
		if lo < len(rel.Recs) {
			a.Right = rel.Recs[lo].Ref()
		}
		sigs = []sigagg.Signature{rel.Sigs[lo-1]}
	} else { // empty with v below the domain: anchor on the first record
		if len(rel.Recs) == 0 {
			return nil, fmt.Errorf("join: empty relation has no anchor for %d", v)
		}
		a.Anchor = rel.Recs[0]
		a.AnchorLeft = chain.MinRef
		a.Right = chain.MaxRef
		if len(rel.Recs) > 1 {
			a.Right = rel.Recs[1].Ref()
		}
		sigs = []sigagg.Signature{rel.Sigs[0]}
	}
	var err error
	a.Agg, err = scheme.Aggregate(sigs)
	if err != nil {
		return nil, err
	}
	return a, nil
}

// FilterCert is the owner-certified partitioned Bloom filter on S.B.
type FilterCert struct {
	PF   *bloom.PartitionedFilter
	TS   int64
	Sigs []sigagg.Signature // one per partition, over partitionCertDigest
}

// partitionCertDigest binds a partition's boundaries and filter contents
// to the certification time.
func partitionCertDigest(p *bloom.Partition, ts int64) digest.Digest {
	w := digest.NewWriter(64)
	w.PutBytes([]byte("join-bloom-partition"))
	d := p.Digest()
	w.PutDigest(d)
	w.PutInt64(ts)
	return w.Sum()
}

// CertifyFilter builds and signs a partitioned Bloom filter over the
// relation's join attribute.
func CertifyFilter(scheme sigagg.Scheme, priv sigagg.PrivateKey, rel *Relation,
	valuesPerPartition int, bitsPerKey float64, ts int64) (*FilterCert, error) {

	pf, err := bloom.BuildPartitioned(rel.Keys(), valuesPerPartition, bitsPerKey)
	if err != nil {
		return nil, err
	}
	fc := &FilterCert{PF: pf, TS: ts, Sigs: make([]sigagg.Signature, pf.P())}
	for i := range pf.Partitions {
		d := partitionCertDigest(&pf.Partitions[i], ts)
		sig, err := scheme.Sign(priv, d[:])
		if err != nil {
			return nil, fmt.Errorf("join: certify partition %d: %w", i, err)
		}
		fc.Sigs[i] = sig
	}
	return fc, nil
}

// CertifyKeys builds and signs a partitioned Bloom filter directly over
// a set of join-attribute values, routing the per-partition certifications
// through the signing pool. This is the data-aggregator path for live
// relations, where the key set comes from the authenticated index rather
// than a materialized Relation snapshot.
func CertifyKeys(pool *sigagg.Pool, priv sigagg.PrivateKey, keys []int64,
	valuesPerPartition int, bitsPerKey float64, ts int64) (*FilterCert, error) {

	pf, err := bloom.BuildPartitioned(keys, valuesPerPartition, bitsPerKey)
	if err != nil {
		return nil, err
	}
	sigs, err := pool.SignIndexed(priv, pf.P(), func(i int) []byte {
		d := partitionCertDigest(&pf.Partitions[i], ts)
		return d[:]
	})
	if err != nil {
		return nil, fmt.Errorf("join: certify partitions: %w", err)
	}
	return &FilterCert{PF: pf, TS: ts, Sigs: sigs}, nil
}

// VerifyPartitionProof checks one Bloom-negative unmatched proof: the
// certified partition covers the value, the certification signature is
// the owner's over the partition contents at filterTS, and the probe is
// genuinely negative. Exported so composite-VO verifiers can check
// partition proofs individually while batching the chain-backed proofs
// elsewhere.
func VerifyPartitionProof(scheme sigagg.Scheme, pub sigagg.PublicKey,
	up *UnmatchedProof, filterTS int64) error {

	if up.Partition == nil {
		return fmt.Errorf("%w: unmatched value %d without partition", sigagg.ErrVerify, up.RA)
	}
	if up.RA < up.Partition.Lo || up.RA >= up.Partition.Hi {
		return fmt.Errorf("%w: partition does not cover %d", sigagg.ErrVerify, up.RA)
	}
	d := partitionCertDigest(up.Partition, filterTS)
	if err := scheme.Verify(pub, d[:], up.PartSig); err != nil {
		return fmt.Errorf("partition cert for %d: %w", up.RA, err)
	}
	if up.Partition.Filter.MayContainUint64(uint64(up.RA)) {
		return fmt.Errorf("%w: filter probe positive for %d without boundary proof",
			sigagg.ErrVerify, up.RA)
	}
	return nil
}

// UnmatchedProof proves one unmatched R record.
type UnmatchedProof struct {
	RA int64 // the unmatched R.A value

	// Bloom path (BF only): the probed partition with its certification.
	Partition *bloom.Partition
	PartSig   sigagg.Signature

	// Boundary path (BV always; BF on false positives): an anchored
	// empty-selection proof on S.
	Boundary *chain.Answer
}

// Answer is the verifiable equi-join result. The R-side selection proof
// (RAnswer) is produced by the caller's R relation; this answer covers
// the S side.
type Answer struct {
	Method    Method
	FilterTS  int64
	Matches   []*chain.Answer  // one per matched distinct R.A value
	Unmatched []UnmatchedProof // one per unmatched distinct R.A value
}

// Build constructs the S-side join proof for the given distinct R.A
// values against relation s.
func Build(scheme sigagg.Scheme, method Method, raValues []int64, s *Relation, fc *FilterCert) (*Answer, error) {
	ans := &Answer{Method: method}
	if fc != nil {
		ans.FilterTS = fc.TS
	}
	seen := map[int64]bool{}
	for _, v := range raValues {
		if seen[v] {
			continue
		}
		seen[v] = true
		lo, hi := s.equalRange(v)
		if lo < hi {
			m, err := s.selectEq(scheme, v)
			if err != nil {
				return nil, err
			}
			ans.Matches = append(ans.Matches, m)
			continue
		}
		up := UnmatchedProof{RA: v}
		if method == BF {
			if fc == nil {
				return nil, fmt.Errorf("join: BF method without a certified filter")
			}
			idx := fc.PF.Find(v)
			if idx < 0 {
				return nil, fmt.Errorf("join: empty filter")
			}
			part := &fc.PF.Partitions[idx]
			up.Partition = part
			up.PartSig = fc.Sigs[idx]
			if part.Filter.MayContainUint64(uint64(v)) {
				// False positive: fall back to boundaries.
				b, err := s.selectEq(scheme, v)
				if err != nil {
					return nil, err
				}
				up.Boundary = b
			}
		} else {
			b, err := s.selectEq(scheme, v)
			if err != nil {
				return nil, err
			}
			up.Boundary = b
		}
		ans.Unmatched = append(ans.Unmatched, up)
	}
	return ans, nil
}

// Verify checks the S-side join proof: every claimed match is authentic
// and complete, and every claimed non-match is proven either by a
// certified Bloom filter negative or by enclosing boundaries.
func Verify(scheme sigagg.Scheme, pub sigagg.PublicKey, ans *Answer) error {
	if ans == nil {
		return fmt.Errorf("%w: nil join answer", sigagg.ErrVerify)
	}
	for _, m := range ans.Matches {
		if len(m.Records) == 0 {
			return fmt.Errorf("%w: match proof with no records", sigagg.ErrVerify)
		}
		if err := chain.Verify(scheme, pub, m); err != nil {
			return fmt.Errorf("match %d: %w", m.Lo, err)
		}
	}
	for _, up := range ans.Unmatched {
		switch {
		case up.Boundary != nil:
			if len(up.Boundary.Records) != 0 {
				return fmt.Errorf("%w: non-match proof contains records for %d", sigagg.ErrVerify, up.RA)
			}
			if up.Boundary.Lo != up.RA || up.Boundary.Hi != up.RA {
				return fmt.Errorf("%w: boundary proof for wrong value", sigagg.ErrVerify)
			}
			if err := chain.Verify(scheme, pub, up.Boundary); err != nil {
				return fmt.Errorf("non-match %d: %w", up.RA, err)
			}
		case up.Partition != nil:
			if err := VerifyPartitionProof(scheme, pub, &up, ans.FilterTS); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unmatched value %d without proof", sigagg.ErrVerify, up.RA)
		}
	}
	return nil
}
