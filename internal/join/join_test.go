package join

import (
	"crypto/rand"
	"errors"
	"fmt"
	mrand "math/rand"
	"testing"

	"authdb/internal/bloom"
	"authdb/internal/chain"
	"authdb/internal/sigagg"
	"authdb/internal/sigagg/bas"
)

type fixture struct {
	scheme sigagg.Scheme
	priv   sigagg.PrivateKey
	pub    sigagg.PublicKey
	s      *Relation
	fc     *FilterCert
	sB     []int64 // sorted distinct S.B values
}

// newFixture builds an S relation whose B values are the even numbers
// 2..2n (each duplicated dup times), plus a certified partitioned filter.
func newFixture(t *testing.T, n, dup, valsPerPart int) *fixture {
	t.Helper()
	scheme := bas.New(0)
	priv, pub, err := scheme.KeyGen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var recs []*chain.Record
	rid := uint64(1)
	var sB []int64
	for i := 1; i <= n; i++ {
		v := int64(i * 2)
		sB = append(sB, v)
		for d := 0; d < dup; d++ {
			recs = append(recs, &chain.Record{
				RID: rid, Key: v, TS: 10,
				Attrs: [][]byte{[]byte(fmt.Sprintf("s-%d-%d", v, d))},
			})
			rid++
		}
	}
	rel, err := BuildRelation(scheme, priv, recs)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := CertifyFilter(scheme, priv, rel, valsPerPart, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{scheme: scheme, priv: priv, pub: pub, s: rel, fc: fc, sB: sB}
}

func TestBuildVerifyBV(t *testing.T) {
	f := newFixture(t, 50, 2, 4)
	// R.A values: 10, 20 match; 11, 21 do not.
	ans, err := Build(f.scheme, BV, []int64{10, 20, 11, 21}, f.s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Matches) != 2 || len(ans.Unmatched) != 2 {
		t.Fatalf("matches=%d unmatched=%d", len(ans.Matches), len(ans.Unmatched))
	}
	// Each matched value has dup=2 S records.
	if len(ans.Matches[0].Records) != 2 {
		t.Fatalf("match returned %d records, want 2", len(ans.Matches[0].Records))
	}
	if err := Verify(f.scheme, f.pub, ans); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestBuildVerifyBF(t *testing.T) {
	f := newFixture(t, 200, 1, 4)
	var ra []int64
	for v := int64(3); v < 100; v += 2 { // all odd: unmatched
		ra = append(ra, v)
	}
	ra = append(ra, 40, 50, 60) // matched
	ans, err := Build(f.scheme, BF, ra, f.s, f.fc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Matches) != 3 {
		t.Fatalf("matches=%d", len(ans.Matches))
	}
	if err := Verify(f.scheme, f.pub, ans); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestBFFalsePositiveFallsBackToBoundary(t *testing.T) {
	// A tiny filter (1 bit/key) false-positives often; every unmatched
	// proof must still verify via the boundary fallback.
	scheme := bas.New(0)
	priv, pub, err := scheme.KeyGen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var recs []*chain.Record
	for i := 1; i <= 100; i++ {
		recs = append(recs, &chain.Record{RID: uint64(i), Key: int64(i * 2), TS: 1})
	}
	rel, _ := BuildRelation(scheme, priv, recs)
	fc, err := CertifyFilter(scheme, priv, rel, 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var ra []int64
	for v := int64(3); v < 200; v += 2 {
		ra = append(ra, v)
	}
	ans, err := Build(scheme, BF, ra, rel, fc)
	if err != nil {
		t.Fatal(err)
	}
	fp := 0
	for _, u := range ans.Unmatched {
		if u.Boundary != nil {
			fp++
		}
	}
	if fp == 0 {
		t.Fatal("expected false positives with 1 bit/key")
	}
	if err := Verify(scheme, pub, ans); err != nil {
		t.Fatalf("Verify with fallbacks: %v", err)
	}
}

func TestVerifyRejectsFakeNonMatch(t *testing.T) {
	f := newFixture(t, 50, 1, 4)
	// 40 IS in S; server claims it unmatched using a forged negative
	// partition (zeroed filter).
	ans, err := Build(f.scheme, BF, []int64{41}, f.s, f.fc)
	if err != nil {
		t.Fatal(err)
	}
	up := &ans.Unmatched[0]
	up.RA = 40
	fake := *up.Partition
	fake.Filter = bloom.New(fake.Filter.M(), fake.Filter.K()) // all-zero bits
	up.Partition = &fake
	err = Verify(f.scheme, f.pub, ans)
	if !errors.Is(err, sigagg.ErrVerify) {
		t.Fatalf("forged partition: want ErrVerify, got %v", err)
	}
}

func TestVerifyRejectsWrongPartition(t *testing.T) {
	f := newFixture(t, 100, 1, 4)
	ans, err := Build(f.scheme, BF, []int64{11}, f.s, f.fc)
	if err != nil {
		t.Fatal(err)
	}
	// Present a genuine certified partition that does not cover 11.
	last := len(f.fc.PF.Partitions) - 1
	ans.Unmatched[0].Partition = &f.fc.PF.Partitions[last]
	ans.Unmatched[0].PartSig = f.fc.Sigs[last]
	if ans.Unmatched[0].Boundary != nil {
		t.Skip("11 false-positived; test needs a clean negative")
	}
	err = Verify(f.scheme, f.pub, ans)
	if !errors.Is(err, sigagg.ErrVerify) {
		t.Fatalf("wrong partition: want ErrVerify, got %v", err)
	}
}

func TestVerifyRejectsDroppedMatchRecord(t *testing.T) {
	f := newFixture(t, 20, 3, 4)
	ans, err := Build(f.scheme, BV, []int64{10}, f.s, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := ans.Matches[0]
	if len(m.Records) != 3 {
		t.Fatalf("want 3 duplicates, got %d", len(m.Records))
	}
	// Drop the middle duplicate and rebuild the aggregate from the
	// remaining two signatures.
	lo, _ := f.s.equalRange(10)
	m.Records = []*chain.Record{m.Records[0], m.Records[2]}
	m.Agg, _ = f.scheme.Aggregate([]sigagg.Signature{f.s.Sigs[lo], f.s.Sigs[lo+2]})
	err = Verify(f.scheme, f.pub, ans)
	if !errors.Is(err, sigagg.ErrVerify) {
		t.Fatalf("dropped duplicate: want ErrVerify, got %v", err)
	}
}

func TestMeasureBVDedup(t *testing.T) {
	sB := []int64{10, 20, 30, 40}
	// 21 and 25 share boundaries (20,30): dedup to 2 values.
	st := MeasureBV([]int64{21, 25}, sB, 4)
	if st.BoundaryValues != 2 {
		t.Fatalf("BoundaryValues = %d, want 2", st.BoundaryValues)
	}
	if st.TotalBytes() != 8 {
		t.Fatalf("TotalBytes = %d, want 8", st.TotalBytes())
	}
	// 15 adds boundary 10 and shares 20.
	st = MeasureBV([]int64{21, 25, 15}, sB, 4)
	if st.BoundaryValues != 3 {
		t.Fatalf("BoundaryValues = %d, want 3", st.BoundaryValues)
	}
}

func TestMeasureBVOutsideDomain(t *testing.T) {
	sB := []int64{10, 20}
	st := MeasureBV([]int64{5, 100}, sB, 4)
	if st.BoundaryValues != 2 {
		t.Fatalf("BoundaryValues = %d, want 2 (one per edge)", st.BoundaryValues)
	}
	st = MeasureBV([]int64{5}, nil, 4)
	if st.BoundaryValues != 0 {
		t.Fatal("empty S must need no boundaries")
	}
}

func TestMeasureBFCountsProbedPartitionsOnce(t *testing.T) {
	pf, err := bloom.BuildPartitioned([]int64{10, 20, 30, 40, 50, 60, 70, 80}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	sB := []int64{10, 20, 30, 40, 50, 60, 70, 80}
	// Two probes into the same partition: filter bytes counted once.
	st1 := MeasureBF([]int64{21}, pf, sB, 4, 63)
	st2 := MeasureBF([]int64{21, 25}, pf, sB, 4, 63)
	if st1.ProbedPartitions != 1 || st2.ProbedPartitions != 1 {
		t.Fatalf("probed = %d,%d, want 1,1", st1.ProbedPartitions, st2.ProbedPartitions)
	}
	if st2.FilterBytes != st1.FilterBytes {
		t.Fatal("same-partition probes must not double-count filter bytes")
	}
}

func TestBFBeatsBVAtLowAlpha(t *testing.T) {
	// The headline result of Fig. 11(a): with few matches, BV's VO is
	// near |S| while BF's stays small.
	rng := mrand.New(mrand.NewSource(1))
	var sB []int64
	seen := map[int64]bool{}
	for len(sB) < 3000 {
		v := rng.Int63n(1 << 30)
		if !seen[v] {
			seen[v] = true
			sB = append(sB, v)
		}
	}
	sortInt64(sB)
	pf, err := bloom.BuildPartitioned(sB, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	var unmatched []int64
	for len(unmatched) < 2000 {
		v := rng.Int63n(1 << 30)
		if !seen[v] {
			unmatched = append(unmatched, v)
		}
	}
	bv := MeasureBV(unmatched, sB, 63).TotalBytes()
	bf := MeasureBF(unmatched, pf, sB, 4, 63).TotalBytes()
	if bf >= bv {
		t.Fatalf("BF (%dB) must beat BV (%dB) at low alpha", bf, bv)
	}
}

func TestFormulaBVShape(t *testing.T) {
	// Eq. 2 decreases linearly in alpha and caps the ratio at 2.
	if FormulaBV(0, 100, 1000, 4) != 800 { // min(2, 10)=2 -> 100*2*4
		t.Fatal("FormulaBV cap broken")
	}
	if FormulaBV(0.5, 100, 1000, 4) != 400 {
		t.Fatal("FormulaBV alpha scaling broken")
	}
	if FormulaBV(0, 1000, 500, 4) != 2000 { // ratio 0.5
		t.Fatal("FormulaBV sub-1 ratio broken")
	}
}

func TestFormulaBFShape(t *testing.T) {
	// Filter term dominates at fp=0; boundary term appears with fp.
	base := FormulaBF(0.5, 1000, 100, 8*3425, 0, 4)
	withFP := FormulaBF(0.5, 1000, 100, 8*3425, 0.0216, 4)
	if withFP <= base {
		t.Fatal("false positives must add boundary bytes")
	}
}

func TestZViability(t *testing.T) {
	// Paper: IB/p >= 2.83 at IA/IB = 1; IB/p >= 6.29 at IA/IB = 10.
	if Z(1, 2.83) > ZThreshold+0.01 {
		t.Fatalf("Z(1, 2.83) = %f, want <= 0.75", Z(1, 2.83))
	}
	if Z(1, 2.5) < ZThreshold {
		t.Fatalf("Z(1, 2.5) = %f, want > 0.75", Z(1, 2.5))
	}
	if Z(10, 6.29) > ZThreshold+0.01 {
		t.Fatalf("Z(10, 6.29) = %f, want <= 0.75", Z(10, 6.29))
	}
	if Z(10, 5) < ZThreshold {
		t.Fatalf("Z(10, 5) = %f, want > 0.75", Z(10, 5))
	}
}

func sortInt64(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
