package join

import (
	"sort"

	"authdb/internal/bloom"
)

// VOStats breaks down the measured proof size for the unmatched fraction
// of a join answer (the part Figure 11 plots). Boundary proofs ship the
// enclosing S records (the chained anchor of §3.3 — RecSize bytes each),
// while partition boundaries are bare attribute values (AttrSize bytes).
type VOStats struct {
	AttrSize         int // |S.B| in bytes (4 in §5.5)
	RecSize          int // boundary-record size in bytes (≈63 for Holding)
	BoundaryValues   int // deduplicated boundary records transmitted
	FilterBytes      int // total bits/8 of the partition filters returned
	PartitionEdges   int // partition boundary values transmitted
	ProbedPartitions int
	FalsePositives   int
	UnmatchedValues  int
}

// TotalBytes is the VO size for the unmatched-record proof.
func (v VOStats) TotalBytes() int {
	return v.RecSize*v.BoundaryValues + v.AttrSize*v.PartitionEdges + v.FilterBytes
}

// MeasureBV measures the actual BV proof size: for every unmatched value
// the enclosing S.B boundary pair, with duplicates across unmatched
// values elided (the dedup of §3.5).
func MeasureBV(unmatched []int64, sB []int64, recSize int) VOStats {
	st := VOStats{AttrSize: recSize, RecSize: recSize, UnmatchedValues: len(unmatched)}
	st.AttrSize = 0 // BV ships no partition edges
	bounds := map[int64]bool{}
	for _, v := range unmatched {
		lo, hi, ok := enclosing(sB, v)
		if !ok {
			continue
		}
		bounds[lo] = true
		bounds[hi] = true
	}
	st.BoundaryValues = len(bounds)
	return st
}

// MeasureBF measures the actual BF proof size: the distinct partitions
// probed by unmatched values (filter bytes + partition edges, adjacent
// edges deduplicated, capped at returning all p+1 edges), plus boundary
// pairs for the values that false-positive on their partition filter.
func MeasureBF(unmatched []int64, pf *bloom.PartitionedFilter, sB []int64, attrSize, recSize int) VOStats {
	st := VOStats{AttrSize: attrSize, RecSize: recSize, UnmatchedValues: len(unmatched)}
	probed := map[int]bool{}
	bounds := map[int64]bool{}
	for _, v := range unmatched {
		idx := pf.Find(v)
		if idx < 0 {
			continue
		}
		if !probed[idx] {
			probed[idx] = true
			st.FilterBytes += pf.Partitions[idx].Filter.SizeBytes()
		}
		if pf.Partitions[idx].Filter.MayContainUint64(uint64(v)) {
			st.FalsePositives++
			lo, hi, ok := enclosing(sB, v)
			if ok {
				bounds[lo] = true
				bounds[hi] = true
			}
		}
	}
	st.ProbedPartitions = len(probed)
	st.BoundaryValues = len(bounds)
	// Partition edges: each probed partition contributes its two edges,
	// shared edges between adjacent probed partitions counted once. If
	// that exceeds returning every edge, return them all (p+1).
	edges := map[int64]bool{}
	for idx := range probed {
		edges[pf.Partitions[idx].Lo] = true
		edges[pf.Partitions[idx].Hi] = true
	}
	st.PartitionEdges = len(edges)
	if all := pf.P() + 1; st.PartitionEdges > all {
		st.PartitionEdges = all
	}
	return st
}

// enclosing returns the S.B values immediately below and above v in the
// sorted distinct slice sB.
func enclosing(sB []int64, v int64) (lo, hi int64, ok bool) {
	if len(sB) == 0 {
		return 0, 0, false
	}
	i := sort.Search(len(sB), func(i int) bool { return sB[i] >= v })
	switch {
	case i == 0:
		return sB[0], sB[0], true // v below domain: one boundary suffices
	case i == len(sB):
		return sB[len(sB)-1], sB[len(sB)-1], true
	default:
		return sB[i-1], sB[i], true
	}
}

// FormulaBV evaluates Eq. 2: the expected BV proof size in bytes.
func FormulaBV(alpha float64, iA, iB int, attrSize int) float64 {
	ratio := float64(iB) / float64(iA)
	if ratio > 2 {
		ratio = 2
	}
	return (1 - alpha) * float64(iA) * ratio * float64(attrSize)
}

// FormulaBF evaluates Eq. 3: the expected BF proof size in bytes, for
// total filter size mBits over p partitions with false-positive rate fp.
func FormulaBF(alpha float64, iA, p int, mBits int, fp float64, attrSize int) float64 {
	filter := (1 - alpha) * float64(mBits) / 8
	partBound := minF(1, 2*(1-alpha)) * float64(p) * float64(attrSize)
	fpBound := (1 - alpha) * float64(iA) * fp * 2 * float64(attrSize)
	return filter + partBound + fpBound
}

// Z evaluates the Fig. 4 configuration surface
// z = 0.0432·(IA/IB) + 2·(p/IB); BF is viable when z < 0.75 (for the
// primary-key/foreign-key case with 8 bits per distinct value and
// |S.B| = 4).
func Z(iaOverIB, ibOverP float64) float64 {
	if ibOverP == 0 {
		return 1e18
	}
	return 0.0432*iaOverIB + 2/ibOverP
}

// ZThreshold is the Fig. 4 viability plane.
const ZThreshold = 0.75

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
