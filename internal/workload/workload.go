// Package workload generates the synthetic datasets and request streams
// of Section 5: uniformly generated relations with RecLen-byte records
// and 4-byte integer keys, Poisson transaction arrivals with a given
// update ratio, range selections with selectivity uniform in
// [sf/2, 3sf/2], and the TPC-E-like 'Security'/'Holding' tables used by
// the equi-join experiments (§5.5).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"authdb/internal/chain"
)

// Config describes a synthetic relation per Table 2.
type Config struct {
	N      int   // number of records (default 1M)
	RecLen int   // record length in bytes (default 512)
	Seed   int64 // RNG seed
}

// DefaultConfig returns the Table 2 defaults.
func DefaultConfig() Config {
	return Config{N: 1_000_000, RecLen: 512, Seed: 1}
}

// Records generates cfg.N records with unique, roughly uniformly spaced
// keys (sorted ascending) and payloads padding each record to RecLen.
func Records(cfg Config) []*chain.Record {
	rng := rand.New(rand.NewSource(cfg.Seed))
	recs := make([]*chain.Record, cfg.N)
	key := int64(0)
	payload := cfg.RecLen - 4 - 8 - 8 // key + rid + ts
	if payload < 1 {
		payload = 1
	}
	for i := range recs {
		key += 1 + rng.Int63n(16) // unique, uniform-ish gaps
		attrs := [][]byte{make([]byte, payload)}
		rng.Read(attrs[0])
		recs[i] = &chain.Record{RID: uint64(i + 1), Key: key, Attrs: attrs, TS: 0}
	}
	return recs
}

// Keys extracts the record keys.
func Keys(recs []*chain.Record) []int64 {
	out := make([]int64, len(recs))
	for i, r := range recs {
		out[i] = r.Key
	}
	return out
}

// Poisson produces exponential interarrival times for a Poisson process
// at the given rate (events per second).
type Poisson struct {
	rate float64
	rng  *rand.Rand
}

// NewPoisson creates the arrival process.
func NewPoisson(rate float64, seed int64) *Poisson {
	if rate <= 0 {
		panic(fmt.Sprintf("workload: non-positive rate %f", rate))
	}
	return &Poisson{rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next interarrival time in seconds.
func (p *Poisson) Next() float64 {
	return p.rng.ExpFloat64() / p.rate
}

// RangeQuery is a selection request over the key domain.
type RangeQuery struct {
	Lo, Hi int64
	Card   int // intended result cardinality
}

// QueryGen draws range selections distributed uniformly over a sorted
// key slice, with selectivity uniform in [sf/2, 3sf/2] as in §5.1.
type QueryGen struct {
	keys []int64
	sf   float64
	rng  *rand.Rand
}

// NewQueryGen creates a generator over the sorted keys.
func NewQueryGen(keys []int64, sf float64, seed int64) *QueryGen {
	return &QueryGen{keys: keys, sf: sf, rng: rand.New(rand.NewSource(seed))}
}

// Next draws one query.
func (g *QueryGen) Next() RangeQuery {
	n := len(g.keys)
	frac := g.sf * (0.5 + g.rng.Float64()) // U[sf/2, 3sf/2]
	card := int(math.Round(frac * float64(n)))
	if card < 1 {
		card = 1
	}
	if card > n {
		card = n
	}
	start := g.rng.Intn(n - card + 1)
	return RangeQuery{Lo: g.keys[start], Hi: g.keys[start+card-1], Card: card}
}

// HotRangeGen draws range selections from a fixed catalog of candidate
// ranges with Zipf-distributed popularity: rank 0 is the hottest range
// and the tail is long — the request skew of a serving workload where
// millions of users keep asking the same few ranges. Each generator
// owns its RNG, so concurrent clients sharing one catalog (required for
// their requests to coincide) each get an independent draw stream.
type HotRangeGen struct {
	catalog []RangeQuery
	zipf    *rand.Zipf
}

// NewHotRangeCatalog builds nRanges candidate ranges over the sorted
// keys with selectivity uniform in [sf/2, 3sf/2] (the §5.1 shape). The
// catalog is what clients must share; hand each client its own
// HotRangeGen over it.
func NewHotRangeCatalog(keys []int64, nRanges int, sf float64, seed int64) []RangeQuery {
	qg := NewQueryGen(keys, sf, seed)
	catalog := make([]RangeQuery, nRanges)
	for i := range catalog {
		catalog[i] = qg.Next()
	}
	return catalog
}

// NewHotRangeGen creates a generator over a shared catalog (which must
// be non-empty). theta > 1 is the Zipf exponent (1.07 is the
// YCSB-style default; larger is more skewed).
func NewHotRangeGen(catalog []RangeQuery, theta float64, seed int64) *HotRangeGen {
	if len(catalog) == 0 {
		panic("workload: empty hot-range catalog")
	}
	if theta <= 1 {
		theta = 1.07
	}
	rng := rand.New(rand.NewSource(seed))
	return &HotRangeGen{
		catalog: catalog,
		zipf:    rand.NewZipf(rng, theta, 1, uint64(len(catalog)-1)),
	}
}

// Next draws one range by Zipf rank.
func (g *HotRangeGen) Next() RangeQuery {
	return g.catalog[g.zipf.Uint64()]
}

// UpdateGen draws records to modify, uniformly.
type UpdateGen struct {
	keys []int64
	rng  *rand.Rand
}

// NewUpdateGen creates a generator over the key population.
func NewUpdateGen(keys []int64, seed int64) *UpdateGen {
	return &UpdateGen{keys: keys, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the key of the record to update.
func (g *UpdateGen) Next() int64 {
	return g.keys[g.rng.Intn(len(g.keys))]
}

// TPCE mirrors the §5.5 join workload: R is the 'Security' table
// (NR = 6850 records, IA = 6850 distinct R.A values, 18-byte records);
// S is a 'Holding' subset (NS = 894000 records over IB = 3425 distinct
// S.B values — a primary-key/foreign-key join where half the securities
// are held).
type TPCE struct {
	R []*chain.Record
	S []*chain.Record
	// Held marks the R.A values that occur in S.B.
	Held map[int64]bool
}

// TPCEConfig sizes the synthetic tables; defaults per §5.5.
type TPCEConfig struct {
	NR   int // security rows (6850)
	NS   int // holding rows (894000)
	IB   int // distinct held securities (3425)
	Seed int64
}

// DefaultTPCEConfig returns the paper's table sizes.
func DefaultTPCEConfig() TPCEConfig {
	return TPCEConfig{NR: 6850, NS: 894_000, IB: 3425, Seed: 7}
}

// NewTPCE generates the tables.
func NewTPCE(cfg TPCEConfig) *TPCE {
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &TPCE{Held: make(map[int64]bool, cfg.IB)}

	// Security: unique keys (the primary key R.A), 18-byte records.
	key := int64(0)
	for i := 0; i < cfg.NR; i++ {
		key += 1 + rng.Int63n(8)
		t.R = append(t.R, &chain.Record{
			RID:   uint64(i + 1),
			Key:   key,
			Attrs: [][]byte{make([]byte, 6)}, // 18B total: key+rid-ish header + 6B payload
			TS:    0,
		})
	}

	// Choose the IB held securities.
	perm := rng.Perm(cfg.NR)
	held := make([]int64, 0, cfg.IB)
	for _, idx := range perm[:cfg.IB] {
		v := t.R[idx].Key
		held = append(held, v)
		t.Held[v] = true
	}

	// Holding: NS rows with B drawn (skewed-ish uniform) from the held
	// securities; ~63-byte records.
	for i := 0; i < cfg.NS; i++ {
		b := held[rng.Intn(len(held))]
		t.S = append(t.S, &chain.Record{
			RID:   uint64(cfg.NR + i + 1),
			Key:   b,
			Attrs: [][]byte{make([]byte, 43)}, // ≈63B with header fields
			TS:    0,
		})
	}
	return t
}

// SelectR draws a fraction sel of R uniformly (the §5.5 selection on R)
// and, when alphaTarget >= 0, composes the sample so that the matched
// fraction equals alphaTarget as closely as possible (Fig. 11(a)'s
// controlled α).
func (t *TPCE) SelectR(sel float64, alphaTarget float64, seed int64) []*chain.Record {
	rng := rand.New(rand.NewSource(seed))
	want := int(sel * float64(len(t.R)))
	if want < 1 {
		want = 1
	}
	if alphaTarget < 0 {
		perm := rng.Perm(len(t.R))
		out := make([]*chain.Record, 0, want)
		for _, idx := range perm[:want] {
			out = append(out, t.R[idx])
		}
		return out
	}
	var matched, unmatched []*chain.Record
	for _, r := range t.R {
		if t.Held[r.Key] {
			matched = append(matched, r)
		} else {
			unmatched = append(unmatched, r)
		}
	}
	rng.Shuffle(len(matched), func(i, j int) { matched[i], matched[j] = matched[j], matched[i] })
	rng.Shuffle(len(unmatched), func(i, j int) { unmatched[i], unmatched[j] = unmatched[j], unmatched[i] })
	nm := int(alphaTarget * float64(want))
	if nm > len(matched) {
		nm = len(matched)
	}
	nu := want - nm
	if nu > len(unmatched) {
		nu = len(unmatched)
	}
	out := append([]*chain.Record{}, matched[:nm]...)
	out = append(out, unmatched[:nu]...)
	return out
}
