package workload

import (
	"math"
	"testing"
)

func TestRecordsUniqueSortedKeys(t *testing.T) {
	cfg := Config{N: 10_000, RecLen: 512, Seed: 3}
	recs := Records(cfg)
	if len(recs) != cfg.N {
		t.Fatalf("got %d records", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Key <= recs[i-1].Key {
			t.Fatalf("keys not strictly increasing at %d", i)
		}
	}
	// Record payload pads to ~RecLen.
	if got := len(recs[0].Attrs[0]); got != 512-20 {
		t.Fatalf("payload = %d bytes", got)
	}
}

func TestRecordsDeterministicPerSeed(t *testing.T) {
	a := Records(Config{N: 100, RecLen: 64, Seed: 9})
	b := Records(Config{N: 100, RecLen: 64, Seed: 9})
	c := Records(Config{N: 100, RecLen: 64, Seed: 10})
	if a[50].Key != b[50].Key {
		t.Fatal("same seed must reproduce keys")
	}
	same := true
	for i := range a {
		if a[i].Key != c[i].Key {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical keys")
	}
}

func TestPoissonMeanRate(t *testing.T) {
	p := NewPoisson(100, 1)
	var sum float64
	const n = 100_000
	for i := 0; i < n; i++ {
		sum += p.Next()
	}
	mean := sum / n
	if math.Abs(mean-0.01) > 0.001 {
		t.Fatalf("mean interarrival %f, want ~0.01", mean)
	}
}

func TestQueryGenSelectivityRange(t *testing.T) {
	recs := Records(Config{N: 10_000, RecLen: 64, Seed: 2})
	keys := Keys(recs)
	g := NewQueryGen(keys, 0.001, 4)
	for i := 0; i < 1000; i++ {
		q := g.Next()
		if q.Card < 5 || q.Card > 15 { // [sf/2, 3sf/2] of 10k = [5, 15]
			t.Fatalf("cardinality %d outside [5,15]", q.Card)
		}
		if q.Lo > q.Hi {
			t.Fatal("inverted query")
		}
	}
}

func TestQueryGenPointQueries(t *testing.T) {
	keys := Keys(Records(Config{N: 1000, RecLen: 64, Seed: 2}))
	g := NewQueryGen(keys, 1e-9, 4)
	q := g.Next()
	if q.Card != 1 || q.Lo != q.Hi {
		t.Fatalf("point query = %+v", q)
	}
}

func TestUpdateGenDrawsExistingKeys(t *testing.T) {
	keys := Keys(Records(Config{N: 100, RecLen: 64, Seed: 2}))
	present := map[int64]bool{}
	for _, k := range keys {
		present[k] = true
	}
	g := NewUpdateGen(keys, 5)
	for i := 0; i < 100; i++ {
		if !present[g.Next()] {
			t.Fatal("update key not in population")
		}
	}
}

func TestTPCEShape(t *testing.T) {
	cfg := TPCEConfig{NR: 685, NS: 8940, IB: 342, Seed: 1} // 1/10 scale
	tp := NewTPCE(cfg)
	if len(tp.R) != cfg.NR || len(tp.S) != cfg.NS {
		t.Fatalf("sizes %d/%d", len(tp.R), len(tp.S))
	}
	// R.A unique.
	seen := map[int64]bool{}
	for _, r := range tp.R {
		if seen[r.Key] {
			t.Fatal("duplicate R.A")
		}
		seen[r.Key] = true
	}
	// S.B distinct count == IB, and every S.B exists in R.A (PK-FK).
	distinct := map[int64]bool{}
	for _, s := range tp.S {
		distinct[s.Key] = true
		if !seen[s.Key] {
			t.Fatal("S.B value missing from R.A: not a PK-FK join")
		}
	}
	if len(distinct) != cfg.IB {
		t.Fatalf("IB = %d, want %d", len(distinct), cfg.IB)
	}
	if len(tp.Held) != cfg.IB {
		t.Fatalf("Held = %d", len(tp.Held))
	}
}

func TestTPCEDefaultMatchesPaper(t *testing.T) {
	cfg := DefaultTPCEConfig()
	if cfg.NR != 6850 || cfg.NS != 894_000 || cfg.IB != 3425 {
		t.Fatalf("defaults %+v do not match §5.5", cfg)
	}
}

func TestSelectRAlphaControl(t *testing.T) {
	tp := NewTPCE(TPCEConfig{NR: 1000, NS: 20000, IB: 500, Seed: 2})
	for _, alpha := range []float64{0.0, 0.3, 0.8, 1.0} {
		sel := tp.SelectR(0.2, alpha, 7)
		if len(sel) == 0 {
			t.Fatal("empty selection")
		}
		matched := 0
		for _, r := range sel {
			if tp.Held[r.Key] {
				matched++
			}
		}
		got := float64(matched) / float64(len(sel))
		if math.Abs(got-alpha) > 0.05 {
			t.Fatalf("alpha target %.1f, got %.2f", alpha, got)
		}
	}
}

func TestSelectRUncontrolled(t *testing.T) {
	tp := NewTPCE(TPCEConfig{NR: 1000, NS: 20000, IB: 500, Seed: 2})
	sel := tp.SelectR(0.5, -1, 7)
	if len(sel) != 500 {
		t.Fatalf("selected %d, want 500", len(sel))
	}
}

func TestHotRangeGen(t *testing.T) {
	recs := Records(Config{N: 10_000, RecLen: 64, Seed: 3})
	keys := Keys(recs)
	catalog := NewHotRangeCatalog(keys, 128, 0.001, 7)
	if len(catalog) != 128 {
		t.Fatalf("catalog size %d", len(catalog))
	}
	for _, q := range catalog {
		if q.Lo > q.Hi || q.Card < 1 {
			t.Fatalf("bad catalog range %+v", q)
		}
	}
	counts := make(map[int64]int)
	g := NewHotRangeGen(catalog, 1.2, 11)
	const draws = 20_000
	for i := 0; i < draws; i++ {
		q := g.Next()
		counts[q.Lo<<20|q.Hi&0xfffff]++
	}
	// Zipf rank 0 (the hottest range) must dominate a uniform share.
	hot := catalog[0]
	if got := counts[hot.Lo<<20|hot.Hi&0xfffff]; got < 4*draws/len(catalog) {
		t.Fatalf("hottest range drew only %d of %d (uniform share %d): not skewed",
			got, draws, draws/len(catalog))
	}
	// Two generators over one catalog must emit ranges from the catalog.
	g2 := NewHotRangeGen(catalog, 1.2, 99)
	seen := make(map[RangeQuery]bool, len(catalog))
	for _, q := range catalog {
		seen[q] = true
	}
	for i := 0; i < 100; i++ {
		if q := g2.Next(); !seen[q] {
			t.Fatalf("generator emitted range %+v outside the catalog", q)
		}
	}
}
