package mht

import (
	"fmt"
	"testing"

	"authdb/internal/digest"
)

func benchLeaves(n int) []digest.Digest {
	ls := make([]digest.Digest, n)
	for i := range ls {
		ls[i] = digest.Sum([]byte(fmt.Sprintf("bench-%d", i)))
	}
	return ls
}

func BenchmarkRoot146(b *testing.B) {
	// One EMB-tree node: a binary MHT over 146 children.
	ls := benchLeaves(146)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Root(ls)
	}
}

func BenchmarkProveRange(b *testing.B) {
	ls := benchLeaves(146)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ProveRange(ls, 40, 90); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyRange(b *testing.B) {
	ls := benchLeaves(146)
	proof, err := ProveRange(ls, 40, 90)
	if err != nil {
		b.Fatal(err)
	}
	window := ls[40:91]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := VerifyRange(146, 40, 90, window, proof); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProveSingleLeaf(b *testing.B) {
	ls := benchLeaves(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Prove(ls, i%1024); err != nil {
			b.Fatal(err)
		}
	}
}
