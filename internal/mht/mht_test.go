package mht

import (
	"fmt"
	"testing"
	"testing/quick"

	"authdb/internal/digest"
)

func mkLeaves(n int) []digest.Digest {
	ls := make([]digest.Digest, n)
	for i := range ls {
		ls[i] = digest.Sum([]byte(fmt.Sprintf("leaf-%d", i)))
	}
	return ls
}

func TestRootDeterministic(t *testing.T) {
	ls := mkLeaves(7)
	if Root(ls) != Root(ls) {
		t.Fatal("Root not deterministic")
	}
}

func TestRootFigure1(t *testing.T) {
	// Four messages as in Figure 1: N1234 = h(h(N1|N2)|h(N3|N4)).
	ls := mkLeaves(4)
	want := digest.Combine(digest.Combine(ls[0], ls[1]), digest.Combine(ls[2], ls[3]))
	if Root(ls) != want {
		t.Fatal("4-leaf root does not match Figure 1 structure")
	}
}

func TestRootSensitiveToAnyLeaf(t *testing.T) {
	ls := mkLeaves(9)
	r := Root(ls)
	for i := range ls {
		mod := make([]digest.Digest, len(ls))
		copy(mod, ls)
		mod[i] = digest.Sum([]byte("tampered"))
		if Root(mod) == r {
			t.Fatalf("root insensitive to leaf %d", i)
		}
	}
}

func TestSingleLeafProof(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13, 97} {
		ls := mkLeaves(n)
		root := Root(ls)
		for i := 0; i < n; i++ {
			proof, err := Prove(ls, i)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			got, err := Verify(n, i, ls[i], proof)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if got != root {
				t.Fatalf("n=%d i=%d: root mismatch", n, i)
			}
		}
	}
}

func TestRangeProofAllRanges(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 11} {
		ls := mkLeaves(n)
		root := Root(ls)
		for a := 0; a < n; a++ {
			for b := a; b < n; b++ {
				proof, err := ProveRange(ls, a, b)
				if err != nil {
					t.Fatalf("n=%d [%d,%d]: %v", n, a, b, err)
				}
				got, err := VerifyRange(n, a, b, ls[a:b+1], proof)
				if err != nil {
					t.Fatalf("n=%d [%d,%d]: %v", n, a, b, err)
				}
				if got != root {
					t.Fatalf("n=%d [%d,%d]: root mismatch", n, a, b)
				}
				if len(proof) != ProofSize(n, a, b) {
					t.Fatalf("ProofSize wrong for n=%d [%d,%d]", n, a, b)
				}
			}
		}
	}
}

func TestVerifyRejectsTamperedWindow(t *testing.T) {
	ls := mkLeaves(16)
	root := Root(ls)
	proof, _ := ProveRange(ls, 3, 6)
	window := make([]digest.Digest, 4)
	copy(window, ls[3:7])
	window[1] = digest.Sum([]byte("evil"))
	got, err := VerifyRange(16, 3, 6, window, proof)
	if err == nil && got == root {
		t.Fatal("tampered window verified")
	}
}

func TestVerifyRejectsWrongShape(t *testing.T) {
	ls := mkLeaves(8)
	proof, _ := ProveRange(ls, 2, 4)
	if _, err := VerifyRange(8, 2, 5, ls[2:6], proof); err == nil {
		t.Fatal("wrong range with mismatched proof must error or mismatch")
	}
	if _, err := VerifyRange(8, 2, 4, ls[2:4], proof); err == nil {
		t.Fatal("short window must fail")
	}
	if _, err := VerifyRange(8, 2, 4, ls[2:5], proof[:1]); err == nil {
		t.Fatal("short proof must fail")
	}
	if _, err := VerifyRange(8, 5, 2, nil, nil); err == nil {
		t.Fatal("inverted range must fail")
	}
}

func TestProveRangeBadArgs(t *testing.T) {
	ls := mkLeaves(4)
	if _, err := ProveRange(ls, -1, 2); err == nil {
		t.Fatal("negative index must fail")
	}
	if _, err := ProveRange(ls, 0, 4); err == nil {
		t.Fatal("out-of-range index must fail")
	}
}

func TestProofSizeLogarithmic(t *testing.T) {
	// Single-leaf proof in an n-leaf balanced tree has ~log2(n) digests.
	n := 1024
	if got := ProofSize(n, 500, 500); got != 10 {
		t.Fatalf("point proof size = %d, want 10", got)
	}
	// Full-range proof is empty.
	if got := ProofSize(n, 0, n-1); got != 0 {
		t.Fatalf("full-range proof size = %d, want 0", got)
	}
}

func TestEmptyTree(t *testing.T) {
	if Root(nil) != digest.Sum(nil) {
		t.Fatal("empty tree root must be h(empty)")
	}
}

func TestQuickRangeProofSound(t *testing.T) {
	prop := func(seed uint8, aRaw, bRaw uint8) bool {
		n := int(seed%60) + 1
		a := int(aRaw) % n
		b := int(bRaw) % n
		if a > b {
			a, b = b, a
		}
		ls := mkLeaves(n)
		proof, err := ProveRange(ls, a, b)
		if err != nil {
			return false
		}
		got, err := VerifyRange(n, a, b, ls[a:b+1], proof)
		return err == nil && got == Root(ls)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
