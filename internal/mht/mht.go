// Package mht implements the Merkle hash tree of Merkle'89 (Figure 1 of
// the paper): a binary hash tree over a list of leaf digests, with proofs
// for single leaves and for contiguous leaf ranges.
//
// Range proofs are what the EMB-tree baseline (package embtree) embeds in
// each B+-tree node: the proof for leaves [a,b] is the minimal set of
// sibling digests needed to recompute the root, consumed in a
// deterministic DFS order so no shape metadata needs to be transmitted.
package mht

import (
	"errors"
	"fmt"

	"authdb/internal/digest"
)

// ErrProof is returned when a proof is malformed or does not reproduce
// the expected root.
var ErrProof = errors.New("mht: invalid proof")

// Root computes the Merkle root of the leaf digests. The tree over a
// node covering leaves [lo,hi) splits at mid=(lo+hi)/2; a single leaf is
// its own digest; zero leaves hash the empty string.
func Root(leaves []digest.Digest) digest.Digest {
	if len(leaves) == 0 {
		return digest.Sum(nil)
	}
	return subRoot(leaves, 0, len(leaves))
}

func subRoot(leaves []digest.Digest, lo, hi int) digest.Digest {
	if hi-lo == 1 {
		return leaves[lo]
	}
	mid := (lo + hi) / 2
	return digest.Combine(subRoot(leaves, lo, mid), subRoot(leaves, mid, hi))
}

// ProveRange returns the proof for the contiguous leaf range [a, b]
// (inclusive): the digests of all maximal subtrees disjoint from the
// range, in DFS order.
func ProveRange(leaves []digest.Digest, a, b int) ([]digest.Digest, error) {
	if a < 0 || b >= len(leaves) || a > b {
		return nil, fmt.Errorf("mht: bad range [%d,%d] over %d leaves", a, b, len(leaves))
	}
	var proof []digest.Digest
	var walk func(lo, hi int)
	walk = func(lo, hi int) {
		if hi <= a || lo > b { // disjoint
			proof = append(proof, subRoot(leaves, lo, hi))
			return
		}
		if lo >= a && hi-1 <= b { // fully covered
			return
		}
		mid := (lo + hi) / 2
		walk(lo, mid)
		walk(mid, hi)
	}
	walk(0, len(leaves))
	return proof, nil
}

// VerifyRange recomputes the root of an n-leaf tree from the digests of
// leaves [a, b] (window, in leaf order) and a proof from ProveRange.
// The caller compares the returned root against the signed root.
func VerifyRange(n, a, b int, window []digest.Digest, proof []digest.Digest) (digest.Digest, error) {
	if a < 0 || b >= n || a > b {
		return digest.Digest{}, fmt.Errorf("%w: bad range [%d,%d] over %d leaves", ErrProof, a, b, n)
	}
	if len(window) != b-a+1 {
		return digest.Digest{}, fmt.Errorf("%w: window has %d digests, want %d", ErrProof, len(window), b-a+1)
	}
	wi, pi := 0, 0
	var walk func(lo, hi int) (digest.Digest, error)
	walk = func(lo, hi int) (digest.Digest, error) {
		if hi <= a || lo > b { // disjoint: consume proof
			if pi >= len(proof) {
				return digest.Digest{}, fmt.Errorf("%w: proof exhausted", ErrProof)
			}
			d := proof[pi]
			pi++
			return d, nil
		}
		if hi-lo == 1 { // covered leaf: consume window
			d := window[wi]
			wi++
			return d, nil
		}
		mid := (lo + hi) / 2
		l, err := walk(lo, mid)
		if err != nil {
			return digest.Digest{}, err
		}
		r, err := walk(mid, hi)
		if err != nil {
			return digest.Digest{}, err
		}
		return digest.Combine(l, r), nil
	}
	root, err := walk(0, n)
	if err != nil {
		return digest.Digest{}, err
	}
	if pi != len(proof) || wi != len(window) {
		return digest.Digest{}, fmt.Errorf("%w: %d unused proof digests, %d unused window digests",
			ErrProof, len(proof)-pi, len(window)-wi)
	}
	return root, nil
}

// Prove returns the single-leaf proof for index i (the classic Merkle
// authentication path, as in Figure 1).
func Prove(leaves []digest.Digest, i int) ([]digest.Digest, error) {
	return ProveRange(leaves, i, i)
}

// Verify recomputes the root for leaf i of an n-leaf tree.
func Verify(n, i int, leaf digest.Digest, proof []digest.Digest) (digest.Digest, error) {
	return VerifyRange(n, i, i, []digest.Digest{leaf}, proof)
}

// ProofSize returns the number of digests in a range proof for [a, b] of
// an n-leaf tree, without materializing it. It equals the count of
// maximal subtrees disjoint from the range.
func ProofSize(n, a, b int) int {
	count := 0
	var walk func(lo, hi int)
	walk = func(lo, hi int) {
		if hi <= a || lo > b {
			count++
			return
		}
		if lo >= a && hi-1 <= b {
			return
		}
		mid := (lo + hi) / 2
		walk(lo, mid)
		walk(mid, hi)
	}
	walk(0, n)
	return count
}
