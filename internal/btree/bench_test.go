package btree

import (
	"math/rand"
	"testing"

	"authdb/internal/storage"
)

func benchTree(b *testing.B, n int) *Tree {
	b.Helper()
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: int64(i) * 2, RID: uint64(i)}
	}
	tr, err := BulkLoad(storage.DefaultPageConfig(), entries)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkGet(b *testing.B) {
	tr := benchTree(b, 1_000_000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(rng.Int63n(2_000_000))
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := benchTree(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(Entry{Key: int64(200_001 + i)})
	}
}

func BenchmarkDelete(b *testing.B) {
	tr := benchTree(b, 100_000)
	// Pre-insert keys to delete so the benchmark never exhausts.
	for i := 0; i < 1_000_000; i++ {
		tr.Insert(Entry{Key: int64(300_000 + i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N && i < 1_000_000; i++ {
		tr.Delete(int64(300_000 + i))
	}
}

func BenchmarkRange1000(b *testing.B) {
	tr := benchTree(b, 1_000_000)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Int63n(1_998_000)
		tr.Range(lo, lo+2000) // ~1000 entries
	}
}

func BenchmarkRangeWithBoundaries(b *testing.B) {
	tr := benchTree(b, 1_000_000)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Int63n(1_998_000)
		tr.RangeWithBoundaries(lo, lo+200)
	}
}

func BenchmarkUpdateSig(b *testing.B) {
	tr := benchTree(b, 1_000_000)
	sig := make([]byte, 20)
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Update(rng.Int63n(1_000_000)*2, sig)
	}
}

func BenchmarkBulkLoad1M(b *testing.B) {
	entries := make([]Entry, 1_000_000)
	for i := range entries {
		entries[i] = Entry{Key: int64(i)}
	}
	cfg := storage.DefaultPageConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BulkLoad(cfg, entries); err != nil {
			b.Fatal(err)
		}
	}
}
