package btree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"authdb/internal/storage"
)

func testTree(t *testing.T, leafCap, fanout int) *Tree {
	t.Helper()
	return New(storage.DefaultPageConfig(), WithCapacities(leafCap, fanout))
}

func TestInsertGet(t *testing.T) {
	tr := testTree(t, 4, 4)
	for i := 0; i < 100; i++ {
		if err := tr.Insert(Entry{Key: int64(i * 2), RID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
	for i := 0; i < 100; i++ {
		e, ok := tr.Get(int64(i * 2))
		if !ok || e.RID != uint64(i) {
			t.Fatalf("Get(%d) = %v,%v", i*2, e, ok)
		}
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get of absent key succeeded")
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDuplicate(t *testing.T) {
	tr := testTree(t, 4, 4)
	if err := tr.Insert(Entry{Key: 5}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(Entry{Key: 5}); err == nil {
		t.Fatal("duplicate insert must fail")
	}
}

func TestInsertRandomOrder(t *testing.T) {
	tr := testTree(t, 4, 4)
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(500)
	for _, k := range perm {
		if err := tr.Insert(Entry{Key: int64(k), RID: uint64(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	got := 0
	tr.Scan(func(e Entry) bool { got++; return true })
	if got != 500 {
		t.Fatalf("Scan saw %d entries, want 500", got)
	}
}

func TestUpdate(t *testing.T) {
	tr := testTree(t, 4, 4)
	tr.Insert(Entry{Key: 1, Sig: []byte("old")})
	if !tr.Update(1, []byte("new")) {
		t.Fatal("Update failed")
	}
	e, _ := tr.Get(1)
	if string(e.Sig) != "new" {
		t.Fatalf("Sig = %q", e.Sig)
	}
	if tr.Update(99, []byte("x")) {
		t.Fatal("Update of absent key succeeded")
	}
}

func TestDelete(t *testing.T) {
	tr := testTree(t, 4, 4)
	for i := 0; i < 200; i++ {
		tr.Insert(Entry{Key: int64(i), RID: uint64(i)})
	}
	for i := 0; i < 200; i += 2 {
		e, ok := tr.Delete(int64(i))
		if !ok || e.RID != uint64(i) {
			t.Fatalf("Delete(%d) = %v,%v", i, e, ok)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
	for i := 0; i < 200; i++ {
		_, ok := tr.Get(int64(i))
		if (i%2 == 0) == ok {
			t.Fatalf("Get(%d) = %v after deletes", i, ok)
		}
	}
	if _, ok := tr.Delete(4); ok {
		t.Fatal("double delete succeeded")
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAll(t *testing.T) {
	tr := testTree(t, 3, 3)
	for i := 0; i < 50; i++ {
		tr.Insert(Entry{Key: int64(i)})
	}
	for i := 49; i >= 0; i-- {
		if _, ok := tr.Delete(int64(i)); !ok {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Tree must still be usable.
	if err := tr.Insert(Entry{Key: 7}); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Get(7); !ok {
		t.Fatal("insert after drain failed")
	}
}

func TestRangeWithBoundaries(t *testing.T) {
	tr := testTree(t, 4, 4)
	for i := 0; i < 100; i++ {
		tr.Insert(Entry{Key: int64(i * 10)})
	}
	entries, left, right := tr.RangeWithBoundaries(250, 400)
	if len(entries) != 16 { // 250..400 step 10
		t.Fatalf("got %d entries, want 16", len(entries))
	}
	if entries[0].Key != 250 || entries[len(entries)-1].Key != 400 {
		t.Fatalf("range [%d,%d]", entries[0].Key, entries[len(entries)-1].Key)
	}
	if left == nil || left.Key != 240 {
		t.Fatalf("left boundary = %v, want 240", left)
	}
	if right == nil || right.Key != 410 {
		t.Fatalf("right boundary = %v, want 410", right)
	}
}

func TestRangeBoundariesAtDomainEdges(t *testing.T) {
	tr := testTree(t, 4, 4)
	for i := 0; i < 10; i++ {
		tr.Insert(Entry{Key: int64(i)})
	}
	entries, left, right := tr.RangeWithBoundaries(0, 9)
	if len(entries) != 10 || left != nil || right != nil {
		t.Fatalf("whole-domain range: %d entries, left=%v right=%v", len(entries), left, right)
	}
	entries, left, right = tr.RangeWithBoundaries(-5, -1)
	if len(entries) != 0 || left != nil || right == nil || right.Key != 0 {
		t.Fatalf("below-domain range: %d entries, left=%v right=%v", len(entries), left, right)
	}
	entries, left, right = tr.RangeWithBoundaries(100, 200)
	if len(entries) != 0 || left == nil || left.Key != 9 || right != nil {
		t.Fatalf("above-domain range: %d entries, left=%v right=%v", len(entries), left, right)
	}
}

func TestRangeEmptyInterval(t *testing.T) {
	tr := testTree(t, 4, 4)
	tr.Insert(Entry{Key: 1})
	if got := tr.Range(5, 2); got != nil {
		t.Fatalf("inverted range returned %v", got)
	}
}

func TestRangeBoundaryAcrossLeaves(t *testing.T) {
	// Force the range start to be the first entry of a leaf so the left
	// boundary comes from the previous leaf.
	tr := testTree(t, 2, 3)
	for i := 0; i < 20; i++ {
		tr.Insert(Entry{Key: int64(i)})
	}
	_, left, _ := tr.RangeWithBoundaries(10, 12)
	if left == nil || left.Key != 9 {
		t.Fatalf("left = %v, want 9", left)
	}
}

func TestPredecessorSuccessor(t *testing.T) {
	tr := testTree(t, 3, 3)
	for _, k := range []int64{10, 20, 30, 40} {
		tr.Insert(Entry{Key: k})
	}
	if p, ok := tr.Predecessor(25); !ok || p.Key != 20 {
		t.Fatalf("Predecessor(25) = %v,%v", p, ok)
	}
	if p, ok := tr.Predecessor(20); !ok || p.Key != 10 {
		t.Fatalf("Predecessor(20) = %v,%v", p, ok)
	}
	if _, ok := tr.Predecessor(10); ok {
		t.Fatal("Predecessor of min must not exist")
	}
	if s, ok := tr.Successor(25); !ok || s.Key != 30 {
		t.Fatalf("Successor(25) = %v,%v", s, ok)
	}
	if s, ok := tr.Successor(30); !ok || s.Key != 40 {
		t.Fatalf("Successor(30) = %v,%v", s, ok)
	}
	if _, ok := tr.Successor(40); ok {
		t.Fatal("Successor of max must not exist")
	}
}

func TestMinMax(t *testing.T) {
	tr := testTree(t, 3, 3)
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree")
	}
	for _, k := range []int64{5, 1, 9, 3} {
		tr.Insert(Entry{Key: k})
	}
	if m, _ := tr.Min(); m.Key != 1 {
		t.Fatalf("Min = %d", m.Key)
	}
	if m, _ := tr.Max(); m.Key != 9 {
		t.Fatalf("Max = %d", m.Key)
	}
}

func TestBulkLoad(t *testing.T) {
	cfg := storage.DefaultPageConfig()
	entries := make([]Entry, 10000)
	for i := range entries {
		entries[i] = Entry{Key: int64(i), RID: uint64(i)}
	}
	tr, err := BulkLoad(cfg, entries)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 10000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{0, 1, 4999, 9999} {
		if _, ok := tr.Get(k); !ok {
			t.Fatalf("Get(%d) failed after bulk load", k)
		}
	}
	// Bulk-loaded tree must accept further inserts.
	if err := tr.Insert(Entry{Key: 100000}); err != nil {
		t.Fatal(err)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	cfg := storage.DefaultPageConfig()
	if _, err := BulkLoad(cfg, []Entry{{Key: 2}, {Key: 1}}); err == nil {
		t.Fatal("unsorted bulk load must fail")
	}
	if _, err := BulkLoad(cfg, []Entry{{Key: 2}, {Key: 2}}); err == nil {
		t.Fatal("duplicate bulk load must fail")
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	tr, err := BulkLoad(storage.DefaultPageConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatal("empty bulk load must give empty tree")
	}
}

func TestTable1Heights(t *testing.T) {
	// Table 1 of the paper: heights of ASign vs EMB-tree.
	cfg := storage.DefaultPageConfig()
	cases := []struct {
		n          int64
		asign, emb int
	}{
		{10_000, 1, 2},
		{100_000, 2, 2},
		{1_000_000, 2, 3},
		{10_000_000, 2, 3},
		{100_000_000, 3, 4},
	}
	for _, c := range cases {
		if got := cfg.HeightASign(c.n); got != c.asign {
			t.Errorf("HeightASign(%d) = %d, want %d", c.n, got, c.asign)
		}
		if got := cfg.HeightEMB(c.n); got != c.emb {
			t.Errorf("HeightEMB(%d) = %d, want %d", c.n, got, c.emb)
		}
	}
}

func TestBuiltHeightMatchesFormula(t *testing.T) {
	// A real bulk-loaded tree at paper fanouts must match the analytic
	// height for N it can afford to build.
	cfg := storage.DefaultPageConfig()
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{Key: int64(i)}
		}
		tr, err := BulkLoad(cfg, entries)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := tr.Height(), cfg.HeightASign(int64(n)); got != want {
			t.Errorf("built height at N=%d is %d, formula says %d", n, got, want)
		}
	}
}

func TestPageCapacities(t *testing.T) {
	cfg := storage.DefaultPageConfig()
	if got := cfg.LeafCapacityASign(); got != 146 {
		t.Errorf("leaf capacity = %d, want 146 (paper §3.2)", got)
	}
	if got := cfg.InternalFanoutASign(); got != 512 {
		t.Errorf("ASign fanout = %d, want 512", got)
	}
	if got := cfg.InternalFanoutEMB(); got != 146 {
		t.Errorf("EMB fanout = %d, want 146 (97 effective)", got)
	}
}

func TestIOCounting(t *testing.T) {
	pool := storage.NewBufferPool(0) // unbounded
	cfg := storage.DefaultPageConfig()
	entries := make([]Entry, 100_000)
	for i := range entries {
		entries[i] = Entry{Key: int64(i)}
	}
	tr, err := BulkLoad(cfg, entries, WithBufferPool(pool))
	if err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	tr.Get(50_000)
	s := pool.Stats()
	// A point lookup touches height+1 pages.
	if want := uint64(tr.Height() + 1); s.LogicalReads != want {
		t.Errorf("point lookup touched %d pages, want %d", s.LogicalReads, want)
	}
}

func TestQuickInsertDeleteConsistency(t *testing.T) {
	prop := func(keys []int16) bool {
		tr := New(storage.DefaultPageConfig(), WithCapacities(3, 4))
		ref := map[int64]bool{}
		for _, k := range keys {
			key := int64(k)
			if ref[key] {
				tr.Delete(key)
				delete(ref, key)
			} else {
				if err := tr.Insert(Entry{Key: key}); err != nil {
					return false
				}
				ref[key] = true
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k := range ref {
			if _, ok := tr.Get(k); !ok {
				return false
			}
		}
		return tr.checkInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRangeMatchesNaive(t *testing.T) {
	prop := func(keys []int16, loRaw, hiRaw int16) bool {
		lo, hi := int64(loRaw), int64(hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		tr := New(storage.DefaultPageConfig(), WithCapacities(4, 4))
		seen := map[int64]bool{}
		for _, k := range keys {
			if !seen[int64(k)] {
				seen[int64(k)] = true
				tr.Insert(Entry{Key: int64(k)})
			}
		}
		want := 0
		for k := range seen {
			if k >= lo && k <= hi {
				want++
			}
		}
		got := tr.Range(lo, hi)
		if len(got) != want {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].Key <= got[i-1].Key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
