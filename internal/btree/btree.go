// Package btree implements the authenticated B+-tree of Section 3.2
// ("ASign"): a disk-page-modelled B+-tree whose leaf entries carry
// ⟨key, sn, rid⟩ — the search key, the record's aggregate-capable
// signature, and the record identifier. Internal nodes are identical to
// a plain B+-tree (no embedded digests), which is what gives the index
// its height advantage over the EMB-tree (Table 1).
//
// Node capacities are derived from the storage.PageConfig page model,
// and every node visit can be charged to a storage.BufferPool so
// experiments can account physical I/O.
package btree

import (
	"errors"
	"fmt"
	"sort"

	"authdb/internal/storage"
)

// Entry is one leaf data entry.
type Entry struct {
	Key int64  // indexed attribute value
	RID uint64 // record identifier
	Sig []byte // the record's signature (sn)
}

// ErrDuplicateKey is returned when inserting a key that already exists;
// the chained-signature scheme requires unique values on the indexed
// attribute.
var ErrDuplicateKey = errors.New("btree: duplicate key")

// Tree is the authenticated B+-tree.
type Tree struct {
	cfg       storage.PageConfig
	leafCap   int
	fanout    int // max children per internal node
	root      node
	firstLeaf *leaf
	size      int
	height    int // number of internal levels (0 = root is a leaf)
	pool      *storage.BufferPool
	nextPage  storage.PageID
}

type node interface {
	page() storage.PageID
}

type leaf struct {
	pid        storage.PageID
	entries    []Entry
	prev, next *leaf
}

type inner struct {
	pid      storage.PageID
	keys     []int64 // keys[i] separates children[i] (< keys[i]) from children[i+1] (>= keys[i])
	children []node
}

func (l *leaf) page() storage.PageID  { return l.pid }
func (n *inner) page() storage.PageID { return n.pid }

// Option configures a Tree.
type Option func(*Tree)

// WithBufferPool charges node visits to pool.
func WithBufferPool(pool *storage.BufferPool) Option {
	return func(t *Tree) { t.pool = pool }
}

// WithCapacities overrides the page-derived node capacities (useful in
// tests to force deep trees with few keys).
func WithCapacities(leafCap, fanout int) Option {
	return func(t *Tree) {
		if leafCap >= 2 {
			t.leafCap = leafCap
		}
		if fanout >= 3 {
			t.fanout = fanout
		}
	}
}

// New creates an empty tree under the given page model.
func New(cfg storage.PageConfig, opts ...Option) *Tree {
	t := &Tree{
		cfg:     cfg,
		leafCap: cfg.LeafCapacityASign(),
		fanout:  cfg.InternalFanoutASign(),
	}
	for _, o := range opts {
		o(t)
	}
	lf := &leaf{pid: t.allocPage()}
	t.root = lf
	t.firstLeaf = lf
	return t
}

func (t *Tree) allocPage() storage.PageID {
	t.nextPage++
	return t.nextPage
}

func (t *Tree) touch(n node, dirty bool) {
	if t.pool != nil {
		t.pool.Touch(n.page(), dirty)
	}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Height returns the number of internal levels (0 when the root is a
// leaf), matching the accounting of Table 1.
func (t *Tree) Height() int { return t.height }

// LeafCapacity returns the max entries per leaf page.
func (t *Tree) LeafCapacity() int { return t.leafCap }

// Fanout returns the max children per internal node.
func (t *Tree) Fanout() int { return t.fanout }

// findLeaf descends to the leaf that should hold key, charging one page
// touch per level.
func (t *Tree) findLeaf(key int64) *leaf {
	n := t.root
	for {
		t.touch(n, false)
		switch v := n.(type) {
		case *leaf:
			return v
		case *inner:
			idx := sort.Search(len(v.keys), func(i int) bool { return key < v.keys[i] })
			n = v.children[idx]
		}
	}
}

// Get returns the entry with the given key.
func (t *Tree) Get(key int64) (Entry, bool) {
	lf := t.findLeaf(key)
	i := sort.Search(len(lf.entries), func(i int) bool { return lf.entries[i].Key >= key })
	if i < len(lf.entries) && lf.entries[i].Key == key {
		return lf.entries[i], true
	}
	return Entry{}, false
}

// Insert adds a new entry; the key must not already exist.
func (t *Tree) Insert(e Entry) error {
	sep, right, err := t.insert(t.root, e)
	if err != nil {
		return err
	}
	if right != nil {
		newRoot := &inner{
			pid:      t.allocPage(),
			keys:     []int64{sep},
			children: []node{t.root, right},
		}
		t.touch(newRoot, true)
		t.root = newRoot
		t.height++
	}
	t.size++
	return nil
}

func (t *Tree) insert(n node, e Entry) (sep int64, right node, err error) {
	switch v := n.(type) {
	case *leaf:
		i := sort.Search(len(v.entries), func(i int) bool { return v.entries[i].Key >= e.Key })
		if i < len(v.entries) && v.entries[i].Key == e.Key {
			return 0, nil, fmt.Errorf("%w: %d", ErrDuplicateKey, e.Key)
		}
		v.entries = append(v.entries, Entry{})
		copy(v.entries[i+1:], v.entries[i:])
		v.entries[i] = e
		t.touch(v, true)
		if len(v.entries) <= t.leafCap {
			return 0, nil, nil
		}
		// Split.
		mid := len(v.entries) / 2
		rl := &leaf{pid: t.allocPage()}
		rl.entries = append(rl.entries, v.entries[mid:]...)
		v.entries = v.entries[:mid]
		rl.next = v.next
		rl.prev = v
		if v.next != nil {
			v.next.prev = rl
		}
		v.next = rl
		t.touch(rl, true)
		return rl.entries[0].Key, rl, nil

	case *inner:
		idx := sort.Search(len(v.keys), func(i int) bool { return e.Key < v.keys[i] })
		t.touch(v, false)
		sep, child, err := t.insert(v.children[idx], e)
		if err != nil || child == nil {
			return 0, nil, err
		}
		v.keys = append(v.keys, 0)
		copy(v.keys[idx+1:], v.keys[idx:])
		v.keys[idx] = sep
		v.children = append(v.children, nil)
		copy(v.children[idx+2:], v.children[idx+1:])
		v.children[idx+1] = child
		t.touch(v, true)
		if len(v.children) <= t.fanout {
			return 0, nil, nil
		}
		// Split internal node.
		midKey := len(v.keys) / 2
		up := v.keys[midKey]
		rn := &inner{pid: t.allocPage()}
		rn.keys = append(rn.keys, v.keys[midKey+1:]...)
		rn.children = append(rn.children, v.children[midKey+1:]...)
		v.keys = v.keys[:midKey]
		v.children = v.children[:midKey+1]
		t.touch(rn, true)
		return up, rn, nil
	}
	panic("btree: unknown node type")
}

// Update replaces the signature stored for key.
func (t *Tree) Update(key int64, sig []byte) bool {
	lf := t.findLeaf(key)
	i := sort.Search(len(lf.entries), func(i int) bool { return lf.entries[i].Key >= key })
	if i < len(lf.entries) && lf.entries[i].Key == key {
		lf.entries[i].Sig = sig
		t.touch(lf, true)
		return true
	}
	return false
}

// Delete removes the entry with the given key and returns it. Leaves
// that become empty are unlinked; interior separators may become stale,
// which is harmless for routing.
func (t *Tree) Delete(key int64) (Entry, bool) {
	e, ok := t.delete(t.root, key)
	if !ok {
		return Entry{}, false
	}
	// Collapse a root with a single child.
	for {
		v, isInner := t.root.(*inner)
		if !isInner || len(v.children) > 1 {
			break
		}
		t.root = v.children[0]
		t.height--
	}
	t.size--
	return e, true
}

func (t *Tree) delete(n node, key int64) (Entry, bool) {
	switch v := n.(type) {
	case *leaf:
		i := sort.Search(len(v.entries), func(i int) bool { return v.entries[i].Key >= key })
		if i >= len(v.entries) || v.entries[i].Key != key {
			return Entry{}, false
		}
		e := v.entries[i]
		v.entries = append(v.entries[:i], v.entries[i+1:]...)
		t.touch(v, true)
		return e, true

	case *inner:
		idx := sort.Search(len(v.keys), func(i int) bool { return key < v.keys[i] })
		t.touch(v, false)
		e, ok := t.delete(v.children[idx], key)
		if !ok {
			return Entry{}, false
		}
		// Unlink an emptied child leaf (keep at least one child).
		if lf, isLeaf := v.children[idx].(*leaf); isLeaf && len(lf.entries) == 0 && len(v.children) > 1 {
			if lf.prev != nil {
				lf.prev.next = lf.next
			} else {
				t.firstLeaf = lf.next
			}
			if lf.next != nil {
				lf.next.prev = lf.prev
			}
			v.children = append(v.children[:idx], v.children[idx+1:]...)
			if idx < len(v.keys) {
				v.keys = append(v.keys[:idx], v.keys[idx+1:]...)
			} else {
				v.keys = v.keys[:len(v.keys)-1]
			}
			t.touch(v, true)
		}
		return e, true
	}
	panic("btree: unknown node type")
}

// Range returns all entries with lo <= key <= hi in key order.
func (t *Tree) Range(lo, hi int64) []Entry {
	out, _, _ := t.RangeWithBoundaries(lo, hi)
	return out
}

// RangeWithBoundaries returns the entries in [lo, hi] plus the boundary
// entries immediately to the left of lo and to the right of hi (nil at
// the domain edges). The boundaries are what the server returns to prove
// completeness of a range selection (§3.3).
func (t *Tree) RangeWithBoundaries(lo, hi int64) (entries []Entry, left, right *Entry) {
	if lo > hi {
		return nil, nil, nil
	}
	lf := t.findLeaf(lo)
	// Back up for the left boundary.
	i := sort.Search(len(lf.entries), func(i int) bool { return lf.entries[i].Key >= lo })
	if i > 0 {
		e := lf.entries[i-1]
		left = &e
	} else {
		for p := lf.prev; p != nil; p = p.prev {
			t.touch(p, false)
			if len(p.entries) > 0 {
				e := p.entries[len(p.entries)-1]
				left = &e
				break
			}
		}
	}
	for lf != nil {
		for ; i < len(lf.entries); i++ {
			e := lf.entries[i]
			if e.Key > hi {
				right = &e
				return entries, left, right
			}
			entries = append(entries, e)
		}
		lf = lf.next
		if lf != nil {
			t.touch(lf, false)
		}
		i = 0
	}
	return entries, left, nil
}

// Predecessor returns the entry with the largest key < key.
func (t *Tree) Predecessor(key int64) (Entry, bool) {
	lf := t.findLeaf(key)
	i := sort.Search(len(lf.entries), func(i int) bool { return lf.entries[i].Key >= key })
	if i > 0 {
		return lf.entries[i-1], true
	}
	for p := lf.prev; p != nil; p = p.prev {
		t.touch(p, false)
		if len(p.entries) > 0 {
			return p.entries[len(p.entries)-1], true
		}
	}
	return Entry{}, false
}

// Successor returns the entry with the smallest key > key.
func (t *Tree) Successor(key int64) (Entry, bool) {
	lf := t.findLeaf(key)
	i := sort.Search(len(lf.entries), func(i int) bool { return lf.entries[i].Key > key })
	for lf != nil {
		if i < len(lf.entries) {
			return lf.entries[i], true
		}
		lf = lf.next
		if lf != nil {
			t.touch(lf, false)
		}
		i = 0
	}
	return Entry{}, false
}

// Min returns the smallest entry.
func (t *Tree) Min() (Entry, bool) {
	for lf := t.firstLeaf; lf != nil; lf = lf.next {
		if len(lf.entries) > 0 {
			return lf.entries[0], true
		}
	}
	return Entry{}, false
}

// Max returns the largest entry.
func (t *Tree) Max() (Entry, bool) {
	n := t.root
	for {
		t.touch(n, false)
		switch v := n.(type) {
		case *leaf:
			if len(v.entries) > 0 {
				return v.entries[len(v.entries)-1], true
			}
			// Empty rightmost leaf: walk back along the chain.
			for p := v.prev; p != nil; p = p.prev {
				if len(p.entries) > 0 {
					return p.entries[len(p.entries)-1], true
				}
			}
			return Entry{}, false
		case *inner:
			n = v.children[len(v.children)-1]
		}
	}
}

// Scan calls fn for every entry in key order, stopping early if fn
// returns false.
func (t *Tree) Scan(fn func(Entry) bool) {
	for lf := t.firstLeaf; lf != nil; lf = lf.next {
		t.touch(lf, false)
		for _, e := range lf.entries {
			if !fn(e) {
				return
			}
		}
	}
}

// BulkLoad builds a tree bottom-up from entries sorted by key, filling
// nodes to the configured utilization (the standard 2/3 by default).
func BulkLoad(cfg storage.PageConfig, entries []Entry, opts ...Option) (*Tree, error) {
	t := New(cfg, opts...)
	if len(entries) == 0 {
		return t, nil
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Key <= entries[i-1].Key {
			return nil, fmt.Errorf("btree: bulk load input not strictly sorted at %d", i)
		}
	}
	perLeaf := int(float64(t.leafCap) * cfg.Utilization)
	if perLeaf < 1 {
		perLeaf = 1
	}
	perNode := int(float64(t.fanout) * cfg.Utilization)
	if perNode < 2 {
		perNode = 2
	}

	// Build the leaf level.
	var leaves []node
	var seps []int64 // seps[i] = min key of leaves[i]
	var prev *leaf
	for i := 0; i < len(entries); i += perLeaf {
		j := i + perLeaf
		if j > len(entries) {
			j = len(entries)
		}
		lf := &leaf{pid: t.allocPage()}
		lf.entries = append(lf.entries, entries[i:j]...)
		lf.prev = prev
		if prev != nil {
			prev.next = lf
		}
		prev = lf
		leaves = append(leaves, lf)
		seps = append(seps, lf.entries[0].Key)
		t.touch(lf, true)
	}
	t.firstLeaf = leaves[0].(*leaf)

	// Build internal levels.
	level := leaves
	levelSeps := seps
	height := 0
	for len(level) > 1 {
		var parents []node
		var parentSeps []int64
		for i := 0; i < len(level); i += perNode {
			j := i + perNode
			if j > len(level) {
				j = len(level)
			}
			// Avoid a final parent with a single child.
			if j-i == 1 && len(parents) > 0 {
				p := parents[len(parents)-1].(*inner)
				p.keys = append(p.keys, levelSeps[i])
				p.children = append(p.children, level[i])
				break
			}
			n := &inner{pid: t.allocPage()}
			n.children = append(n.children, level[i:j]...)
			n.keys = append(n.keys, levelSeps[i+1:j]...)
			parents = append(parents, n)
			parentSeps = append(parentSeps, levelSeps[i])
			t.touch(n, true)
		}
		level = parents
		levelSeps = parentSeps
		height++
	}
	t.root = level[0]
	t.height = height
	t.size = len(entries)
	return t, nil
}

// checkInvariants validates ordering and structure; used by tests.
func (t *Tree) checkInvariants() error {
	count := 0
	var prevKey *int64
	for lf := t.firstLeaf; lf != nil; lf = lf.next {
		for _, e := range lf.entries {
			if prevKey != nil && e.Key <= *prevKey {
				return fmt.Errorf("btree: leaf chain out of order: %d after %d", e.Key, *prevKey)
			}
			k := e.Key
			prevKey = &k
			count++
		}
		if lf.next != nil && lf.next.prev != lf {
			return fmt.Errorf("btree: broken leaf back-link")
		}
	}
	if count != t.size {
		return fmt.Errorf("btree: leaf chain has %d entries, size says %d", count, t.size)
	}
	return t.checkNode(t.root, nil, nil)
}

func (t *Tree) checkNode(n node, lo, hi *int64) error {
	switch v := n.(type) {
	case *leaf:
		for _, e := range v.entries {
			if lo != nil && e.Key < *lo {
				return fmt.Errorf("btree: key %d below separator %d", e.Key, *lo)
			}
			if hi != nil && e.Key >= *hi {
				return fmt.Errorf("btree: key %d not below separator %d", e.Key, *hi)
			}
		}
		return nil
	case *inner:
		if len(v.children) != len(v.keys)+1 {
			return fmt.Errorf("btree: inner node with %d keys, %d children", len(v.keys), len(v.children))
		}
		for i := 1; i < len(v.keys); i++ {
			if v.keys[i] <= v.keys[i-1] {
				return fmt.Errorf("btree: separators out of order")
			}
		}
		for i, c := range v.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = &v.keys[i-1]
			}
			if i < len(v.keys) {
				chi = &v.keys[i]
			}
			if err := t.checkNode(c, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	panic("btree: unknown node type")
}
