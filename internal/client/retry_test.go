package client

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"testing"
	"time"

	"authdb/internal/wire"
)

func TestRetryPolicyDefaults(t *testing.T) {
	var p RetryPolicy
	if got := p.attempts(); got != 1 {
		t.Fatalf("zero policy attempts = %d, want 1", got)
	}
	p.MaxAttempts = 5
	if got := p.attempts(); got != 5 {
		t.Fatalf("attempts = %d, want 5", got)
	}
}

func TestRetryDelayExponentialAndCapped(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 60 * time.Millisecond, Jitter: -1}
	want := []time.Duration{10, 20, 40, 60, 60} // ms, capped
	for i, w := range want {
		if got := p.delay(i+1, nil); got != w*time.Millisecond {
			t.Fatalf("delay(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestRetryDelayJitterDeterministic(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	a := p.delay(1, rand.New(rand.NewSource(7)))
	b := p.delay(1, rand.New(rand.NewSource(7)))
	if a != b {
		t.Fatalf("same seed, different delays: %v vs %v", a, b)
	}
	// Default ±20% jitter stays inside the band.
	if a < 80*time.Millisecond || a > 120*time.Millisecond {
		t.Fatalf("jittered delay %v outside ±20%% of 100ms", a)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want retryClass
	}{
		{fmt.Errorf("q: %w", ErrDiverged), rcFatal},
		{fmt.Errorf("q: %w", ErrConfig), rcFatal},
		{fmt.Errorf("q: %w", ErrOverloaded), rcBackoff},
		{fmt.Errorf("q: %w", ErrBadFrame), rcReconnect},
		{fmt.Errorf("q: %w", ErrServer), rcFatal},
		{fmt.Errorf("q: %w", wire.ErrCorrupt), rcReconnect},
		{io.EOF, rcReconnect},
		{io.ErrUnexpectedEOF, rcReconnect},
		{&net.OpError{Op: "read", Err: os.ErrDeadlineExceeded}, rcReconnect},
		//authlint:ignore retryclass deliberately unclassified error asserting the transport fallback branch of classify
		{errors.New("dial tcp: connection refused"), rcReconnect},
	}
	for _, c := range cases {
		if got := classify(c.err); got != c.want {
			t.Errorf("classify(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
