package client_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"authdb/internal/client"
	"authdb/internal/core"
	"authdb/internal/faultnet"
	"authdb/internal/server"
	"authdb/internal/sigagg"
	"authdb/internal/sigagg/xortest"
	"authdb/internal/workload"
)

// fleetFixture boots one loaded system behind several independent
// NetServers — the replicas of a fleet, all serving identical state.
func fleetFixture(t *testing.T, n, replicas int) (*core.System, []int64, []string, []*server.NetServer) {
	t.Helper()
	sys, err := core.NewSystem(xortest.New(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs := workload.Records(workload.Config{N: n, RecLen: 64, Seed: 3})
	keys := workload.Keys(recs)
	msg, err := sys.DA.Load(recs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.QS.Apply(msg); err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, replicas)
	srvs := make([]*server.NetServer, replicas)
	for i := range srvs {
		srv := server.NewNetServer(sys.QS, server.NetConfig{})
		ln, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		addrs[i] = ln.Addr().String()
		srvs[i] = srv
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
	}
	return sys, keys, addrs, srvs
}

func fleetRetry() client.RetryPolicy {
	return client.RetryPolicy{MaxAttempts: 20, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}
}

// TestFleetFailoverOnDeadReplica: killing the connected replica
// mid-session moves the next query to a healthy one, re-anchored and
// fully verified.
func TestFleetFailoverOnDeadReplica(t *testing.T) {
	sys, keys, addrs, srvs := fleetFixture(t, 200, 3)
	cl, err := client.DialFleet(addrs, client.Config{
		Scheme: sys.Scheme, Pub: sys.Pub, Retry: fleetRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.Query(keys[0], keys[30]); err != nil {
		t.Fatal(err)
	}
	if got := cl.CurrentAddr(); got != addrs[0] {
		t.Fatalf("connected to %s, want the first replica %s", got, addrs[0])
	}
	// Kill the connected replica outright.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srvs[0].Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Query(keys[0], keys[30]); err != nil {
		t.Fatalf("query after replica death: %v", err)
	}
	st := cl.Stats()
	if st.Failovers == 0 {
		t.Fatalf("no failover recorded: %+v", st)
	}
	if got := cl.CurrentAddr(); got == addrs[0] {
		t.Fatal("session still attributed to the dead replica")
	}
}

// TestFleetFailoverWithinMaxElapsed is the satellite scenario: the
// primary's network path goes dark (connections die, new ones hang off
// a dead upstream), and a client with a total-elapsed retry budget
// fails over to the live replica well inside it.
func TestFleetFailoverWithinMaxElapsed(t *testing.T) {
	sys, keys, addrs, _ := fleetFixture(t, 200, 2)
	proxy, err := faultnet.NewProxy(addrs[0], faultnet.Profile{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	fleet := []string{proxy.Addr(), addrs[1]}
	budget := 2 * time.Second
	cl, err := client.DialFleet(fleet, client.Config{
		Scheme: sys.Scheme, Pub: sys.Pub,
		DialTimeout:    200 * time.Millisecond,
		RequestTimeout: 200 * time.Millisecond,
		Retry: client.RetryPolicy{
			MaxAttempts: 1000, BaseDelay: time.Millisecond,
			MaxDelay: 10 * time.Millisecond, MaxElapsed: budget,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.Query(keys[0], keys[30]); err != nil {
		t.Fatal(err)
	}
	// Partition the primary: sever live pipes and point new ones at a
	// dead upstream.
	proxy.SetUpstream("127.0.0.1:1")
	proxy.DropAll()
	start := time.Now()
	if _, _, err := cl.Query(keys[0], keys[30]); err != nil {
		t.Fatalf("query during primary partition: %v", err)
	}
	if elapsed := time.Since(start); elapsed > budget {
		t.Fatalf("failover took %v, over the %v budget", elapsed, budget)
	}
	if st := cl.Stats(); st.Failovers == 0 {
		t.Fatalf("partition never triggered a failover: %+v", st)
	}
}

// TestMaxElapsedBoundsRetries: with every server unreachable, the
// retry loop gives up once the elapsed budget is spent — not after
// MaxAttempts-worth of unbounded backoff.
func TestMaxElapsedBoundsRetries(t *testing.T) {
	sys, keys, addrs, _ := fleetFixture(t, 100, 1)
	proxy, err := faultnet.NewProxy(addrs[0], faultnet.Profile{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	budget := 300 * time.Millisecond
	cl, err := client.Dial(proxy.Addr(), client.Config{
		Scheme: sys.Scheme, Pub: sys.Pub,
		DialTimeout:    100 * time.Millisecond,
		RequestTimeout: 100 * time.Millisecond,
		Retry: client.RetryPolicy{
			MaxAttempts: 1 << 20, BaseDelay: time.Millisecond,
			MaxDelay: 20 * time.Millisecond, MaxElapsed: budget,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	proxy.SetUpstream("127.0.0.1:1")
	proxy.DropAll()
	start := time.Now()
	_, _, err = cl.Query(keys[0], keys[10])
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("query against a dead server succeeded")
	}
	// Allow the in-flight attempt at the budget's edge to finish.
	if slack := budget + 500*time.Millisecond; elapsed > slack {
		t.Fatalf("retry loop ran %v, budget was %v", elapsed, budget)
	}
}

// TestFleetQuarantineOnTamper: a replica caught serving forged
// signatures is quarantined for the session and the query completes —
// verified — on an honest replica. The condemned replica is attributed
// by address and never dialed again.
func TestFleetQuarantineOnTamper(t *testing.T) {
	sys, keys, addrs, _ := fleetFixture(t, 200, 2)
	byz := newTamperSrv(t, addrs[0])
	byz.SetMode(tamperSigFlip)
	fleet := []string{byz.Addr(), addrs[1]}
	cl, err := client.DialFleet(fleet, client.Config{
		Scheme: sys.Scheme, Pub: sys.Pub, Retry: fleetRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.Query(keys[0], keys[30]); err != nil {
		t.Fatalf("query with one Byzantine replica: %v", err)
	}
	st := cl.Stats()
	if st.Quarantines != 1 {
		t.Fatalf("quarantines = %d, want 1 (%+v)", st.Quarantines, st)
	}
	quar := cl.Quarantined()
	cause, ok := quar[byz.Addr()]
	if !ok {
		t.Fatalf("quarantine list %v misses the Byzantine replica %s", quar, byz.Addr())
	}
	if !errors.Is(cause, sigagg.ErrVerify) {
		t.Fatalf("quarantine evidence = %v, want a verification failure", cause)
	}
	if got := cl.CurrentAddr(); got != addrs[1] {
		t.Fatalf("session on %s, want the honest replica %s", got, addrs[1])
	}
	// Once every replica is condemned, the session refuses to proceed.
	cl2, err := client.DialFleet([]string{byz.Addr()}, client.Config{
		Scheme: sys.Scheme, Pub: sys.Pub, Retry: fleetRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if _, _, err := cl2.Query(keys[0], keys[30]); err == nil {
		t.Fatal("lone Byzantine replica's answer accepted")
	}
}

// TestFleetReconnectReadmitsQuarantined: an explicit Reconnect is the
// operator override — it re-admits a quarantined replica, and the
// divergence/verification machinery still guards the re-entry.
func TestFleetReconnectReadmitsQuarantined(t *testing.T) {
	sys, keys, addrs, _ := fleetFixture(t, 200, 2)
	byz := newTamperSrv(t, addrs[0])
	byz.SetMode(tamperSigFlip)
	fleet := []string{byz.Addr(), addrs[1]}
	cl, err := client.DialFleet(fleet, client.Config{
		Scheme: sys.Scheme, Pub: sys.Pub, Retry: fleetRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.Query(keys[0], keys[30]); err != nil {
		t.Fatal(err)
	}
	if len(cl.Quarantined()) != 1 {
		t.Fatal("fixture: tampering replica was not quarantined")
	}
	byz.SetMode(tamperNone) // the operator "fixed" it
	if err := cl.Reconnect(byz.Addr()); err != nil {
		t.Fatalf("reconnect to repaired replica: %v", err)
	}
	if len(cl.Quarantined()) != 0 {
		t.Fatal("explicit reconnect did not lift the quarantine")
	}
	if _, _, err := cl.Query(keys[0], keys[30]); err != nil {
		t.Fatalf("query after re-admission: %v", err)
	}
	if got := cl.CurrentAddr(); got != byz.Addr() {
		t.Fatalf("session on %s after explicit reconnect to %s", got, byz.Addr())
	}
}
