package client

import (
	"fmt"

	"authdb/internal/core"
	"authdb/internal/freshness"
	"authdb/internal/join"
	"authdb/internal/projection"
	"authdb/internal/query"
	"authdb/internal/sigagg"
	"authdb/internal/wire"
)

// relSession is one relation's verification state inside a catalog
// session: its owner's public key and a dedicated verifier holding that
// relation's certified summary stream.
type relSession struct {
	pub      sigagg.PublicKey
	scheme   sigagg.Scheme // cfg.Scheme bound to this relation's owner
	verifier *core.Verifier
}

// ErrNoRelation reports a plan naming a relation the session holds no
// public key for. Deterministic, so fatal like any ErrConfig.
var ErrNoRelation = fmt.Errorf("%w: no public key for relation", ErrConfig)

// ErrComposite wraps structural defects in a composite answer — a
// missing section, a join proof for the wrong key set, misaligned
// projection rows. The bytes decoded but the proof does not hang
// together, which from an honest server cannot happen: it is treated as
// verification failure (sigagg.ErrVerify), so a fleet session
// quarantines the replica.
var ErrComposite = fmt.Errorf("%w: composite answer malformed", sigagg.ErrVerify)

// QueryPlan runs one select-project-join query against the server's
// catalog and fully verifies the composite answer before returning it:
// the outer chain proof (authenticity + completeness over the selected
// range), the projection aggregate over attribute-level signatures, and
// per outer key exactly one join proof — a chained match, a certified
// Bloom-filter negative (bounded-staleness, see below), or an anchored
// boundary proof — with every chain-backed piece also checked for
// freshness against the per-relation certified summary streams.
//
// A BF negative proves absence only as of the filter's certification
// time, so the client additionally bounds the filter's age against the
// inner relation's newest certified summary: newer than one ρ behind,
// or the answer is rejected as stale (freshness.ErrStale) and the
// caller re-queries — the same contract as record staleness.
//
// The fetch retries under the session policy; verification runs exactly
// once per delivered answer. A fleet session fails over past replicas
// convicted by verification, like QueryBatch.
func (c *Client) QueryPlan(spec *query.Spec) (*wire.Composite, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rels == nil {
		return nil, fmt.Errorf("%w: no catalog relations configured", ErrConfig)
	}
	plan, err := query.Plan(spec, true)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	outerRS, ok := c.rels[spec.Rel]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrNoRelation, spec.Rel)
	}
	innerRS := outerRS
	if spec.Join != nil {
		if innerRS, ok = c.rels[spec.Join.Rel]; !ok {
			return nil, fmt.Errorf("%w %q", ErrNoRelation, spec.Join.Rel)
		}
	}
	planBytes := plan.Marshal()

	hops := 1
	if c.fleet() {
		hops = len(c.addrs)
	}
	var lastErr error
	for hop := 0; hop < hops; hop++ {
		var comp *wire.Composite
		err := c.withRetry(func() error {
			var oerr error
			comp, oerr = c.fetchPlan(planBytes, spec)
			return oerr
		})
		if err == nil {
			if err = c.verifyComposite(spec, comp, outerRS, innerRS); err == nil {
				c.stats.Plans++
				return comp, nil
			}
		}
		if !c.fleet() || !quarantinable(err) {
			return nil, err
		}
		lastErr = err
		if herr := c.hopReplica(err); herr != nil {
			return nil, fmt.Errorf("%w (dropping replica for: %v)", herr, err)
		}
	}
	return nil, lastErr
}

// fetchPlan round-trips one 'J'/'P' request and decodes the composite
// answer without verifying it.
func (c *Client) fetchPlan(planBytes []byte, spec *query.Spec) (*wire.Composite, error) {
	c.armDeadline()
	defer c.clearDeadline()
	kind := byte('P')
	if spec.Join != nil {
		kind = 'J'
	}
	// Advertise, per touched relation, the newest certified summary this
	// session holds, so tails carry only deltas.
	var since []wire.RelSince
	addSince := func(rel string) {
		for _, rs := range since {
			if rs.Name == rel {
				return
			}
		}
		var seq uint64
		if latest, ok := c.rels[rel].verifier.LatestSummary(); ok {
			seq = latest.Seq
		}
		since = append(since, wire.RelSince{Name: rel, SinceSeq: seq})
	}
	addSince(spec.Rel)
	if spec.Join != nil {
		addSince(spec.Join.Rel)
	}
	req, err := wire.AppendPlanReq(wire.GetBuffer(), kind, planBytes, since)
	if err != nil {
		wire.PutBuffer(req)
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	werr := wire.WriteFrame(c.bw, req)
	wire.PutBuffer(req)
	if werr != nil {
		return nil, werr
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	data, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	fk, err := wire.Kind(data)
	if err != nil {
		return nil, err
	}
	switch fk {
	case 'C':
		return wire.DecodeComposite(data)
	case 'E':
		return nil, decodeErrorFrame(data)
	default:
		return nil, fmt.Errorf("%w: unexpected response kind %q", wire.ErrCorrupt, fk)
	}
}

// verifyComposite checks every section of a composite answer. Nothing
// in comp is trusted before this returns nil.
func (c *Client) verifyComposite(spec *query.Spec, comp *wire.Composite, outerRS, innerRS *relSession) error {
	if comp.Outer == nil {
		return fmt.Errorf("%w: no outer answer", ErrComposite)
	}
	// 1. Per-relation summary tails feed each relation's freshness state
	// (gaps bridged over 'T' requests).
	for _, tail := range comp.Tails {
		rs, ok := c.rels[tail.Rel]
		if !ok {
			return fmt.Errorf("%w: tail for unknown relation %q", ErrComposite, tail.Rel)
		}
		if err := c.relIngest(tail.Rel, rs, tail.Summaries); err != nil {
			return err
		}
	}
	now := c.cfg.Now()
	// 2. Outer chain: authenticity + completeness over the selected
	// range, freshness per record.
	if _, err := outerRS.verifier.VerifyAnswers(
		[]*core.Answer{{Chain: comp.Outer}},
		[]core.Range{{Lo: spec.Lo, Hi: spec.Hi}}, now); err != nil {
		return fmt.Errorf("client: outer relation %q: %w", spec.Rel, err)
	}
	// 3. Projection: present exactly when requested, rows 1:1 with the
	// chained records, aggregate over the owner's attribute signatures.
	if err := c.verifyProjection(spec, comp, outerRS); err != nil {
		return err
	}
	// 4. Join: per outer key exactly one proof, each verified.
	return c.verifyJoin(spec, comp, innerRS, now)
}

func (c *Client) verifyProjection(spec *query.Spec, comp *wire.Composite, outerRS *relSession) error {
	if spec.Attrs == nil {
		if comp.Proj != nil {
			return fmt.Errorf("%w: unrequested projection section", ErrComposite)
		}
		return nil
	}
	p := comp.Proj
	if p == nil {
		return fmt.Errorf("%w: projection section missing", ErrComposite)
	}
	if len(p.AttrIdxs) != len(spec.Attrs) {
		return fmt.Errorf("%w: projection onto %d slots, requested %d", ErrComposite, len(p.AttrIdxs), len(spec.Attrs))
	}
	for i, a := range spec.Attrs {
		if p.AttrIdxs[i] != a {
			return fmt.Errorf("%w: projection slot %d is attribute %d, requested %d", ErrComposite, i, p.AttrIdxs[i], a)
		}
	}
	if len(p.Rows) != len(comp.Outer.Records) {
		return fmt.Errorf("%w: %d projected rows for %d records", ErrComposite, len(p.Rows), len(comp.Outer.Records))
	}
	// Row identity is pinned to the chain: same RID and same certified
	// timestamp, in the same order. The chain proof already authenticated
	// (RID, key, TS); the projection aggregate binds (RID, slot, value,
	// TS); together a swapped or stale value cannot survive both.
	for i, rec := range comp.Outer.Records {
		if p.Rows[i].RID != rec.RID || p.Rows[i].TS != rec.TS {
			return fmt.Errorf("%w: projected row %d does not match chained record (rid %d/%d ts %d/%d)",
				ErrComposite, i, p.Rows[i].RID, rec.RID, p.Rows[i].TS, rec.TS)
		}
	}
	if err := projection.Verify(outerRS.scheme, outerRS.pub, p); err != nil {
		return fmt.Errorf("client: projection over %q: %w", spec.Rel, err)
	}
	c.stats.AttrSigsVerif += uint64(len(p.Rows) * len(p.AttrIdxs))
	return nil
}

func (c *Client) verifyJoin(spec *query.Spec, comp *wire.Composite, innerRS *relSession, now int64) error {
	if spec.Join == nil {
		if comp.Join != nil {
			return fmt.Errorf("%w: unrequested join section", ErrComposite)
		}
		return nil
	}
	j := comp.Join
	if j == nil {
		return fmt.Errorf("%w: join section missing", ErrComposite)
	}
	if j.Method != spec.Join.Method {
		return fmt.Errorf("%w: join used method %v, requested %v", ErrComposite, j.Method, spec.Join.Method)
	}
	// Coverage: each outer key must be resolved exactly once, and no
	// proof may reference a key outside the outer answer — a server must
	// not be able to drop a non-match proof (claiming fewer results) or
	// smuggle in extra matches.
	resolved := make(map[int64]bool, len(comp.Outer.Records))
	for _, rec := range comp.Outer.Records {
		resolved[rec.Key] = false
	}
	claim := func(v int64) error {
		done, ok := resolved[v]
		if !ok {
			return fmt.Errorf("%w: join proof for key %d outside the outer answer", ErrComposite, v)
		}
		if done {
			return fmt.Errorf("%w: key %d resolved twice", ErrComposite, v)
		}
		resolved[v] = true
		return nil
	}

	// Chain-backed proofs (matches and boundary non-matches) batch
	// through the inner verifier: authenticity, completeness for the
	// point range [v, v], and freshness of every disclosed record —
	// boundary anchors included.
	var chainAnswers []*core.Answer
	var chainRanges []core.Range
	var matches, bfNegs, bfFalls, bounds uint64
	for _, m := range j.Matches {
		if m == nil || len(m.Records) == 0 {
			return fmt.Errorf("%w: match proof with no records", ErrComposite)
		}
		if m.Lo != m.Hi {
			return fmt.Errorf("%w: match proof covers [%d,%d], not a point", ErrComposite, m.Lo, m.Hi)
		}
		if err := claim(m.Lo); err != nil {
			return err
		}
		chainAnswers = append(chainAnswers, &core.Answer{Chain: m})
		chainRanges = append(chainRanges, core.Range{Lo: m.Lo, Hi: m.Hi})
		matches++
	}
	for i := range j.Unmatched {
		up := &j.Unmatched[i]
		if err := claim(up.RA); err != nil {
			return err
		}
		switch {
		case up.Boundary != nil:
			if len(up.Boundary.Records) != 0 {
				return fmt.Errorf("%w: non-match proof for %d contains records", ErrComposite, up.RA)
			}
			if up.Boundary.Lo != up.RA || up.Boundary.Hi != up.RA {
				return fmt.Errorf("%w: boundary proof for %d covers [%d,%d]", ErrComposite, up.RA, up.Boundary.Lo, up.Boundary.Hi)
			}
			chainAnswers = append(chainAnswers, &core.Answer{Chain: up.Boundary})
			chainRanges = append(chainRanges, core.Range{Lo: up.RA, Hi: up.RA})
			if j.Method == join.BF {
				bfFalls++
			} else {
				bounds++
			}
		case up.Partition != nil:
			if j.Method != join.BF {
				return fmt.Errorf("%w: Bloom proof for %d in a BV join", ErrComposite, up.RA)
			}
			if err := join.VerifyPartitionProof(innerRS.scheme, innerRS.pub, up, j.FilterTS); err != nil {
				return fmt.Errorf("client: join against %q: %w", spec.Join.Rel, err)
			}
			bfNegs++
		default:
			return fmt.Errorf("%w: key %d unmatched without proof", ErrComposite, up.RA)
		}
	}
	for v, done := range resolved {
		if !done {
			return fmt.Errorf("%w: outer key %d has no join proof", ErrComposite, v)
		}
	}
	if len(chainAnswers) > 0 {
		if _, err := innerRS.verifier.VerifyAnswers(chainAnswers, chainRanges, now); err != nil {
			return fmt.Errorf("client: join against %q: %w", spec.Join.Rel, err)
		}
	}
	// Bloom negatives prove absence only as of the filter certification:
	// bound its age against the inner relation's newest certified
	// summary, which this answer's tail just delivered. One ρ is the
	// protocol's staleness unit; an older filter means the server skipped
	// re-certification past a summary close and its negatives may hide
	// newer inserts.
	if bfNegs > 0 {
		latest, ok := innerRS.verifier.LatestSummary()
		if !ok {
			return fmt.Errorf("%w: Bloom negatives without any certified summary for %q", ErrComposite, spec.Join.Rel)
		}
		if lag := latest.TS - j.FilterTS; lag > c.cfg.Protocol.Rho {
			return fmt.Errorf("%w: join filter for %q certified at %d is %d behind the summary stream (ρ=%d)",
				freshness.ErrStale, spec.Join.Rel, j.FilterTS, lag, c.cfg.Protocol.Rho)
		}
	}
	c.stats.JoinMatches += matches
	c.stats.JoinBFNegs += bfNegs
	c.stats.JoinBFFalls += bfFalls
	c.stats.JoinBounds += bounds
	return nil
}

// relIngest folds one relation's summary tail into its verifier,
// cross-checking re-sent sequence numbers (rollback evidence) and
// bridging sequence gaps with 'T' fetches.
func (c *Client) relIngest(rel string, rs *relSession, sums []freshness.Summary) error {
	held := uint64(0)
	if latest, ok := rs.verifier.LatestSummary(); ok {
		held = latest.Seq
	}
	for i := range sums {
		s := &sums[i]
		if s.Seq <= held {
			if err := checkHeldIn(rs.verifier, s); err != nil {
				return err
			}
			continue
		}
		if s.Seq > held+1 {
			// The tail skipped sequence numbers (e.g. a capped response):
			// fetch the missing stretch explicitly before continuing.
			fetched, err := c.fetchRelSummariesRetry(rel, held)
			if err != nil {
				return err
			}
			for k := range fetched {
				f := &fetched[k]
				if f.Seq <= held {
					if err := checkHeldIn(rs.verifier, f); err != nil {
						return err
					}
					continue
				}
				if f.Seq >= s.Seq {
					break
				}
				if err := rs.verifier.IngestSummary(*f); err != nil {
					return fmt.Errorf("client: relation %q summary %d: %w", rel, f.Seq, err)
				}
				held = f.Seq
				c.stats.Summaries++
			}
			if held+1 != s.Seq {
				return fmt.Errorf("%w: relation %q summaries %d..%d unavailable", wire.ErrCorrupt, rel, held+1, s.Seq-1)
			}
		}
		if err := rs.verifier.IngestSummary(*s); err != nil {
			return fmt.Errorf("client: relation %q summary %d: %w", rel, s.Seq, err)
		}
		held = s.Seq
		c.stats.Summaries++
	}
	return nil
}

// fetchRelSummariesRetry round-trips one 'T' per-relation summary
// request under the retry policy.
func (c *Client) fetchRelSummariesRetry(rel string, sinceSeq uint64) ([]freshness.Summary, error) {
	var sums []freshness.Summary
	err := c.withRetry(func() error {
		var oerr error
		sums, oerr = c.fetchRelSummaries(rel, sinceSeq)
		return oerr
	})
	if err != nil {
		return nil, err
	}
	return sums, nil
}

func (c *Client) fetchRelSummaries(rel string, sinceSeq uint64) ([]freshness.Summary, error) {
	c.armDeadline()
	defer c.clearDeadline()
	req := wire.AppendRelSumsReq(wire.GetBuffer(), rel, sinceSeq, 0)
	werr := wire.WriteFrame(c.bw, req)
	wire.PutBuffer(req)
	if werr != nil {
		return nil, werr
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	data, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	kind, err := wire.Kind(data)
	if err != nil {
		return nil, err
	}
	if kind == 'E' {
		return nil, decodeErrorFrame(data)
	}
	return wire.DecodeSummaries(data)
}
