// Package client is the user side of the networked serving protocol: a
// verifying client that speaks the wire format over TCP, pipelines
// range queries, and checks every verified answer for authenticity,
// completeness (recomputed chain digests, batch-verified aggregates via
// chain.VerifyBatch under core.Verifier.VerifyAnswers) and freshness
// against the certified summary stream it tracks from the server.
//
// The server is untrusted: nothing it sends is believed until the
// verifier has checked it against the data aggregator's public key.
//
// Ownership: a Client owns one connection and one verifier state, and
// every exported method serializes on an internal mutex — concurrent
// callers are safe but take turns, so a retry loop in one goroutine can
// never interleave its frames with another's. For parallel query
// throughput, dial one Client per goroutine.
//
// The network is no more trusted than the server. With a RetryPolicy
// configured the client survives hostile transports: per-request
// deadlines, automatic reconnect with capped exponential backoff and
// jitter, idempotent resend of 'Q'/'S' requests, and backoff on
// ErrOverloaded shed responses. Every reconnect re-anchors the
// certified summary stream (the SyncSummaries/ErrDiverged machinery),
// so flaky networking can never trick a session into trusting a
// rolled-back or stale server — faults may fail requests, but they can
// never widen what the client accepts.
package client

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"authdb/internal/core"
	"authdb/internal/freshness"
	"authdb/internal/sigagg"
	"authdb/internal/wire"
)

// Config parameterizes a client session.
type Config struct {
	// Scheme and Pub identify the data aggregator whose certifications
	// the client trusts. Both are required.
	Scheme sigagg.Scheme
	Pub    sigagg.PublicKey
	// Protocol supplies ρ and ρ' (zero value = core.DefaultConfig()).
	Protocol core.Config
	// MaxFrame caps a response frame's payload (0 = wire.DefaultMaxFrame).
	MaxFrame int
	// DialTimeout bounds connection establishment (0 = no limit).
	DialTimeout time.Duration
	// RequestTimeout bounds each request round trip — writes plus the
	// reads of every pipelined response (0 = no limit). On expiry the
	// connection is unusable (responses can no longer be matched) and
	// the retry machinery, if enabled, reconnects.
	RequestTimeout time.Duration
	// Retry enables automatic recovery from transport faults and
	// overload shedding; the zero value means one attempt per request.
	Retry RetryPolicy
	// Now supplies the protocol clock used for freshness bounds. The
	// protocol's timestamps are logical; by default every certified
	// answer is simply checked against all summaries held.
	Now func() int64
	// VerifyWorkers caps the goroutines answer verification fans out
	// across (digest recomputation, batched signature checks).
	// 0 = GOMAXPROCS. Benchmarks pin it to 1 for per-core numbers.
	VerifyWorkers int
	// Relations maps relation names to their owners' public keys for a
	// multi-relation catalog session. Each relation gets its own
	// verifier (summary stream, freshness state); composite plan
	// answers (QueryPlan) are checked per relation against these keys.
	// Single-relation sessions leave it nil.
	Relations map[string]sigagg.PublicKey
}

// Stats are the client's monotonic counters.
type Stats struct {
	Queries     uint64 // answers fetched
	Verified    uint64 // answers that passed full verification
	Summaries   uint64 // certified summaries ingested
	BytesIn     uint64 // response payload bytes received
	Retries     uint64 // operations resent after a retryable failure
	Reconnects  uint64 // connections re-established
	Shed        uint64 // operations rejected by server overload shedding
	Failovers   uint64 // reconnects that switched to a different replica
	Quarantines uint64 // replicas condemned for tampered/diverged state

	// Composite plan-query counters (QueryPlan).
	Plans         uint64 // composite answers fetched and fully verified
	JoinMatches   uint64 // matched-key proofs verified
	JoinBFNegs    uint64 // Bloom-negative non-match proofs verified
	JoinBFFalls   uint64 // Bloom false positives proven by boundary fallback
	JoinBounds    uint64 // BV boundary non-match proofs verified
	AttrSigsVerif uint64 // attribute-level signatures covered by projection aggregates

	// Verification fast-path counters, snapshotted from the scheme at
	// Stats() time. The scheme's caches are process-wide (DialFleet
	// clients and pools share one scheme instance, and so one set of
	// precomputation tables), so these count the whole process's
	// verification traffic, not just this session's.
	H2CCacheHits   uint64 // hash-to-curve lookups served from cache
	H2CCacheMisses uint64 // hash-to-curve lookups computed in full
	TableBuilds    uint64 // per-public-key precomputation tables built
}

// Client is one verifying session against a networked query server.
// All exported methods are safe for concurrent use; they serialize on
// an internal mutex (see the package comment).
type Client struct {
	mu       sync.Mutex
	cfg      Config
	addr     string // last dialed address, the retry reconnect target
	conn     net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	verifier *core.Verifier
	frame    []byte // reusable response frame buffer
	rng      *rand.Rand
	sleep    func(time.Duration) // indirection for deterministic tests
	stats    Stats

	// Fleet state (see fleet.go); empty for a single-server session.
	addrs []string         // the replica set, in failover order
	cur   int              // index of the replica currently connected
	quar  map[string]error // quarantined replicas and their evidence

	// Catalog state (see plan.go); nil without cfg.Relations.
	rels map[string]*relSession
}

// Dial connects to a query server at addr.
func Dial(addr string, cfg Config) (*Client, error) {
	if cfg.Scheme == nil || cfg.Pub == nil {
		return nil, fmt.Errorf("%w: scheme and public key are required", ErrConfig)
	}
	if cfg.Protocol == (core.Config{}) {
		cfg.Protocol = core.DefaultConfig()
	}
	if cfg.Now == nil {
		cfg.Now = func() int64 { return 1 << 62 }
	}
	conn, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	seed := cfg.Retry.Seed
	if seed == 0 {
		seed = 1
	}
	c := &Client{
		cfg:      cfg,
		addr:     addr,
		conn:     conn,
		verifier: core.NewVerifier(cfg.Scheme, cfg.Pub, cfg.Protocol),
		rng:      rand.New(rand.NewSource(seed)),
		sleep:    time.Sleep,
	}
	if cfg.VerifyWorkers >= 1 {
		c.verifier.SetParallelism(cfg.VerifyWorkers)
	}
	if len(cfg.Relations) > 0 {
		c.rels = make(map[string]*relSession, len(cfg.Relations))
		for name, pub := range cfg.Relations {
			if name == "" || pub == nil {
				conn.Close()
				return nil, fmt.Errorf("%w: relation needs a name and a public key", ErrConfig)
			}
			// Aggregation parameters live with the signer's key, so each
			// relation verifies under a scheme bound to its own owner.
			bound, err := sigagg.Bind(cfg.Scheme, pub)
			if err != nil {
				conn.Close()
				return nil, fmt.Errorf("%w: relation %q: %v", ErrConfig, name, err)
			}
			v := core.NewVerifier(bound, pub, cfg.Protocol)
			if cfg.VerifyWorkers >= 1 {
				v.SetParallelism(cfg.VerifyWorkers)
			}
			c.rels[name] = &relSession{pub: pub, scheme: bound, verifier: v}
		}
	}
	c.resetBuffers()
	return c, nil
}

func (c *Client) resetBuffers() {
	c.br = bufio.NewReaderSize(c.conn, 64<<10)
	c.bw = bufio.NewWriterSize(c.conn, 16<<10)
}

// Close tears the connection down. The verifier state (ingested
// summaries) is discarded with the client.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// Reconnect dials addr again after a broken connection — typically a
// server restart — preserving the session's verifier state, then
// re-anchors the certified summary stream: the newest held summary is
// re-fetched from the new server and compared byte-for-byte against
// the held copy, and any newer summaries are ingested. A server that
// recovered durably bridges seamlessly (its stream continues the held
// sequence); one that lost state is caught by the divergence check
// (ErrDiverged) instead of silently rolling the session's freshness
// anchor back. On ErrDiverged the connection is established but the
// session refuses to trust it.
func (c *Client) Reconnect(addr string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// An explicit Reconnect is the user overriding the fleet machinery:
	// it targets exactly addr, quarantine or not (re-admitting a replica
	// after an operator repaired it is precisely this call's job in a
	// fleet session — the divergence check still guards the re-entry).
	for i, a := range c.addrs {
		if a == addr {
			c.cur = i
			delete(c.quar, addr)
		}
	}
	c.addr = addr
	if err := c.redialTo(addr); err != nil {
		return err
	}
	return c.reanchor()
}

// redial re-establishes a transport: to the configured server, or —
// for a fleet session — to the first usable replica, failing over past
// dead ones.
func (c *Client) redial() error {
	c.conn.Close() // best effort; the old conn is usually already dead
	if len(c.addrs) > 0 {
		return c.redialFleet()
	}
	return c.redialTo(c.addr)
}

// redialTo re-establishes the transport to one specific address.
func (c *Client) redialTo(addr string) error {
	c.conn.Close()
	conn, err := net.DialTimeout("tcp", addr, c.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("client: reconnect %s: %w", addr, err)
	}
	c.addr = addr
	c.conn = conn
	c.resetBuffers()
	c.stats.Reconnects++
	return nil
}

// reanchor replays the summary sync from the newest held summary's
// timestamp (inclusive, so the server must re-send the tip and the
// held/resent comparison runs), detecting rollback and catching up on
// anything published while the session was disconnected.
func (c *Client) reanchor() error {
	anchor := int64(0)
	if latest, ok := c.verifier.LatestSummary(); ok {
		anchor = latest.TS
	}
	if _, err := c.syncSummaries(anchor); err != nil {
		return err
	}
	return nil
}

// Stats snapshots the session counters, overlaying the scheme's
// verification fast-path counters (see the Stats field comments for
// their process-wide scope).
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	if vs, ok := c.verifier.VerifyStats(); ok {
		st.H2CCacheHits = vs.H2CCacheHits
		st.H2CCacheMisses = vs.H2CCacheMisses
		st.TableBuilds = vs.TableBuilds
	}
	return st
}

// SummaryCount reports how many certified summaries the session holds.
func (c *Client) SummaryCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.verifier.SummaryCount()
}

// withRetry runs one idempotent operation under the session's retry
// policy: overload sheds back off and resend on the live connection;
// transport faults back off, reconnect (which re-anchors the summary
// stream), and resend; everything else — verification failures,
// divergence, semantic server errors — is surfaced immediately.
//
// A fleet session additionally fails over: any reconnect-class fault
// or overload shed moves the cursor to the next replica before
// redialing, and quarantinable evidence (divergence, tampered bytes)
// condemns the replica first — including divergence discovered by the
// re-anchor itself, which for a standalone session remains fatal.
func (c *Client) withRetry(op func() error) error {
	attempts := c.cfg.Retry.attempts()
	var start time.Time
	if c.cfg.Retry.MaxElapsed > 0 {
		start = time.Now()
	}
	reconnect := false
	var err error
	for attempt := 1; ; attempt++ {
		if reconnect {
			if rerr := c.redial(); rerr != nil {
				err = rerr
			} else if rerr := c.reanchor(); rerr != nil {
				err = rerr // classified below; ErrDiverged stays fatal
			} else {
				reconnect = false
			}
		}
		if !reconnect {
			err = op()
		}
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrOverloaded) {
			c.stats.Shed++
		}
		if errors.Is(err, ErrAllQuarantined) {
			return err // no server left to retry against
		}
		if attempt >= attempts {
			return err
		}
		switch classify(err) {
		case rcFatal:
			if !(c.fleet() && quarantinable(err)) {
				return err
			}
			c.quarantineCur(err)
			c.conn.Close()
			reconnect = true
		case rcReconnect:
			if c.fleet() {
				if quarantinable(err) {
					c.quarantineCur(err)
				}
				c.advance()
			}
			reconnect = true
			c.conn.Close() // wake anything stuck and force a fresh dial
		case rcBackoff:
			if c.fleet() {
				// The replica is healthy but saturated; a fleet session
				// spends the backoff switching servers instead of waiting
				// in this one's queue.
				c.advance()
				c.conn.Close()
				reconnect = true
			}
		}
		c.stats.Retries++
		d := c.cfg.Retry.delay(attempt, c.rng)
		if me := c.cfg.Retry.MaxElapsed; me > 0 {
			remaining := me - time.Since(start)
			if remaining <= 0 {
				return err
			}
			if d > remaining {
				d = remaining // one final attempt at the budget's edge
			}
		}
		c.sleep(d)
	}
}

// armDeadline starts the per-request clock; clearDeadline stops it
// after a completed round trip.
func (c *Client) armDeadline() {
	if t := c.cfg.RequestTimeout; t > 0 {
		c.conn.SetDeadline(time.Now().Add(t))
	}
}

func (c *Client) clearDeadline() {
	if c.cfg.RequestTimeout > 0 {
		c.conn.SetDeadline(time.Time{})
	}
}

// readFrame reads one response frame into the client's reusable buffer.
// The result is valid until the next read.
func (c *Client) readFrame() ([]byte, error) {
	data, err := wire.ReadFrame(c.br, c.frame, c.cfg.MaxFrame)
	if err != nil {
		return nil, err
	}
	c.frame = data
	c.stats.BytesIn += uint64(len(data)) + 4
	return data, nil
}

// ErrConfig reports an invalid session configuration detected before
// any network traffic. It is deterministic — the same arguments fail
// the same way — so the retry machinery treats it as fatal.
var ErrConfig = errors.New("client: invalid configuration")

// ErrServer wraps error responses the server sent ('E' frames).
var ErrServer = errors.New("client: server error")

// ErrOverloaded (an ErrServer) reports that admission control shed the
// request before doing any work. The connection is healthy; the right
// reaction is to back off and resend, which the retry machinery does
// automatically when enabled.
var ErrOverloaded = fmt.Errorf("%w: overloaded", ErrServer)

// ErrBadFrame (an ErrServer) reports that the server could not parse a
// request frame. Since this client always encodes well-formed frames,
// it treats the response as evidence of in-flight corruption and — with
// retries enabled — resends over a fresh connection.
var ErrBadFrame = fmt.Errorf("%w: request frame rejected", ErrServer)

// ErrDiverged (an ErrServer) reports that a summary the server supplied
// contradicts the same-sequence summary this session already verified —
// the signature of a server whose certified state rolled back, e.g. a
// restart without durable recovery. Accepting the server's version
// would silently rewind the session's freshness anchor, so the session
// refuses instead; the user re-logs-in with a fresh session only after
// deciding the rollback is expected.
var ErrDiverged = fmt.Errorf("%w: certified summary stream diverged (server lost durable state?)", ErrServer)

// checkHeld compares an incoming summary against the same-sequence
// summary the session already holds, if any. A mismatch is accused as
// divergence only after the incoming summary's signature verifies:
// rollback evidence must be authenticated, or in-flight bit flips could
// forge "divergence" and kill honest sessions (the conflict is then
// just transport corruption, and retryable).
func (c *Client) checkHeld(s *freshness.Summary) error {
	return checkHeldIn(c.verifier, s)
}

// checkHeldIn is checkHeld against an explicit verifier, shared with the
// per-relation summary streams of a catalog session.
func checkHeldIn(v *core.Verifier, s *freshness.Summary) error {
	held, ok := v.SummaryBySeq(s.Seq)
	if !ok {
		return nil
	}
	if held.TS != s.TS || held.PeriodStart != s.PeriodStart ||
		!bytes.Equal(held.Compressed, s.Compressed) || !bytes.Equal(held.Sig, s.Sig) {
		if err := v.VerifySummarySig(s); err != nil {
			return fmt.Errorf("%w: conflicting summary %d is unauthenticated (%v)",
				wire.ErrCorrupt, s.Seq, err)
		}
		return fmt.Errorf("%w: summary %d", ErrDiverged, s.Seq)
	}
	return nil
}

// decodeAnswerFrame interprets one response frame as an answer or a
// server-reported error.
func decodeAnswerFrame(data []byte) (*core.Answer, error) {
	kind, err := wire.Kind(data)
	if err != nil {
		return nil, err
	}
	switch kind {
	case 'A':
		return wire.DecodeAnswer(data)
	case 'E':
		return nil, decodeErrorFrame(data)
	default:
		return nil, fmt.Errorf("%w: unexpected response kind %q", wire.ErrCorrupt, kind)
	}
}

// decodeErrorFrame maps a server 'E' response to the sentinel its code
// selects, so callers (and the retry classifier) can react without
// parsing prose.
func decodeErrorFrame(data []byte) error {
	code, msg, err := wire.DecodeErrorCode(data)
	if err != nil {
		return err
	}
	switch code {
	case wire.ErrCodeOverloaded:
		return fmt.Errorf("%w: %s", ErrOverloaded, msg)
	case wire.ErrCodeBadFrame:
		return fmt.Errorf("%w: %s", ErrBadFrame, msg)
	default:
		return fmt.Errorf("%w: %s", ErrServer, msg)
	}
}

// Fetch round-trips one range query and decodes the answer without
// verifying it. Callers that trust nothing (all of them — the server is
// untrusted) pass the result through Verify, or use Query.
func (c *Client) Fetch(lo, hi int64) (*core.Answer, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	answers, err := c.fetchBatchRetry([]core.Range{{Lo: lo, Hi: hi}})
	if err != nil {
		return nil, err
	}
	return answers[0], nil
}

// FetchBatch pipelines the range queries on the connection — all
// requests are written before any response is read, so the batch costs
// one round trip — and decodes the in-order answers. If the server
// reported errors for some queries, every response is still drained
// (the connection stays usable) and the first error is returned.
func (c *Client) FetchBatch(ranges []core.Range) ([]*core.Answer, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fetchBatchRetry(ranges)
}

// fetchBatchRetry is fetchBatch under the retry policy. The whole batch
// is resent on a retryable failure — queries are idempotent reads, and
// nothing from a failed attempt is kept.
func (c *Client) fetchBatchRetry(ranges []core.Range) ([]*core.Answer, error) {
	var answers []*core.Answer
	err := c.withRetry(func() error {
		var oerr error
		answers, oerr = c.fetchBatch(ranges)
		return oerr
	})
	if err != nil {
		return nil, err
	}
	return answers, nil
}

func (c *Client) fetchBatch(ranges []core.Range) ([]*core.Answer, error) {
	if len(ranges) == 0 {
		return nil, nil
	}
	c.armDeadline()
	defer c.clearDeadline()
	// Advertise the highest certified summary we already hold so the
	// server sends only the delta instead of the full summary history
	// with every answer.
	var sinceSeq uint64
	if latest, ok := c.verifier.LatestSummary(); ok {
		sinceSeq = latest.Seq
	}
	req := wire.GetBuffer()
	for _, r := range ranges {
		req = wire.AppendQueryReq(req[:0], r.Lo, r.Hi, sinceSeq)
		if err := wire.WriteFrame(c.bw, req); err != nil {
			wire.PutBuffer(req)
			return nil, err
		}
	}
	wire.PutBuffer(req)
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	answers := make([]*core.Answer, len(ranges))
	var firstErr error
	for i := range ranges {
		data, err := c.readFrame()
		if err != nil {
			return nil, err // transport loss: responses can no longer be matched
		}
		ans, err := decodeAnswerFrame(data)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("client: query [%d,%d]: %w", ranges[i].Lo, ranges[i].Hi, err)
			}
			if !errors.Is(err, ErrServer) {
				return nil, firstErr // undecodable frame: cannot stay in sync
			}
			if errors.Is(err, ErrBadFrame) {
				// The server closes the connection after a frame it could
				// not parse; nothing further is coming.
				return nil, firstErr
			}
			continue
		}
		answers[i] = ans
		c.stats.Queries++
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return answers, nil
}

// Verify checks fetched answers: chain digests are recomputed and the
// aggregates batch-verified (chain.VerifyBatch via the scheme's batched
// primitives), attached summaries are ingested, and every record's
// freshness is bounded against the summaries held. ranges[i] is the
// selection answer i must cover.
//
// An answer attaches only the summaries published since its oldest
// result signature, so a session that skipped some periods can face a
// sequence gap; Verify bridges it by fetching the missing certified
// summaries from the server first (each is still signature-checked and
// chain-checked — the server is trusted for availability only). A
// freshness.ErrStale from Verify is the protocol working: a summary
// proves a newer version of an answered record exists, and the caller
// re-queries.
//
// Verification itself never retries — it runs at most once per fetched
// answer, on exactly the bytes that attempt delivered. Only the
// bridging fetches of missing certified summaries (plain idempotent 'S'
// reads) go through the retry machinery.
func (c *Client) Verify(answers []*core.Answer, ranges []core.Range) ([]*core.FreshnessReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.verify(answers, ranges)
}

func (c *Client) verify(answers []*core.Answer, ranges []core.Range) ([]*core.FreshnessReport, error) {
	if err := c.bridgeSummaries(answers); err != nil {
		return nil, err
	}
	reports, err := c.verifier.VerifyAnswers(answers, ranges, c.cfg.Now())
	if err != nil {
		return nil, err
	}
	c.stats.Verified += uint64(len(answers))
	return reports, nil
}

// bridgeSummaries ingests every summary attached to the answers, in
// sequence order, fetching any sequence numbers the attachments skip
// from the server. Ingestion is capped at the newest attached summary:
// summaries published after the answers were built are deliberately not
// pulled in here, so a batch is always judged against the stream as of
// its own construction.
func (c *Client) bridgeSummaries(answers []*core.Answer) error {
	held := uint64(0)
	if latest, ok := c.verifier.LatestSummary(); ok {
		held = latest.Seq
	}
	var max uint64
	bySeq := make(map[uint64]*freshness.Summary)
	for _, ans := range answers {
		if ans == nil {
			continue
		}
		for i := range ans.Summaries {
			s := &ans.Summaries[i]
			if s.Seq > held {
				bySeq[s.Seq] = s
			} else if err := c.checkHeld(s); err != nil {
				// The server re-sent a summary this session already
				// verified; it must be the same one.
				return err
			}
			if s.Seq > max {
				max = s.Seq
			}
		}
	}
	if max <= held {
		return nil
	}
	for seq := held + 1; seq <= max; seq++ {
		if latest, lok := c.verifier.LatestSummary(); lok && latest.Seq >= seq {
			// A reconnect re-anchor inside a gap fetch already ingested this
			// sequence number; just cross-check any attached copy.
			if s, aok := bySeq[seq]; aok {
				if err := c.checkHeld(s); err != nil {
					return err
				}
			}
			continue
		}
		s, ok := bySeq[seq]
		if !ok {
			// Fetch the next page of the gap from the server. Everything
			// up to seq-1 is ingested, so the cursor is just past the
			// newest held summary; the server's stream is TS-ordered and
			// seq-contiguous, so the page starts exactly at seq (capped
			// responses may need one fetch per page, hence per-seq).
			sinceTS := int64(0)
			if latest, lok := c.verifier.LatestSummary(); lok {
				sinceTS = latest.TS + 1
			}
			sums, err := c.fetchSummariesRetry(sinceTS)
			if err != nil {
				return err
			}
			for i := range sums {
				if sums[i].Seq >= seq && sums[i].Seq <= max {
					if _, dup := bySeq[sums[i].Seq]; !dup {
						bySeq[sums[i].Seq] = &sums[i]
					}
				}
			}
			if s, ok = bySeq[seq]; !ok {
				// The server answered the range request but omitted a
				// summary it is obligated to serve: an incomplete or
				// garbled response stream. Classified as corruption so
				// the session reconnects (and, in a fleet, fails over).
				return fmt.Errorf("%w: summary %d unavailable from answers and server", wire.ErrCorrupt, seq)
			}
		}
		if err := c.verifier.IngestSummary(*s); err != nil {
			return fmt.Errorf("client: summary %d: %w", seq, err)
		}
		c.stats.Summaries++
	}
	return nil
}

// Query is Fetch plus full verification of the answer.
func (c *Client) Query(lo, hi int64) (*core.Answer, *core.FreshnessReport, error) {
	answers, reports, err := c.QueryBatch([]core.Range{{Lo: lo, Hi: hi}})
	if err != nil {
		return nil, nil, err
	}
	return answers[0], reports[0], nil
}

// QueryBatch pipelines the queries and batch-verifies all answers in
// one pass. The fetch retries under the session policy; verification of
// each attempt's delivered bytes runs exactly once.
//
// A fleet session adds the verify-stage failover: when verification
// convicts the connected replica of tampering or divergence (evidence
// transport retries never see, because the fetch succeeded), the
// replica is quarantined and the batch re-fetched — and re-verified —
// through the next one, at most once per replica in the set. A
// freshness miss (ErrStale) is not misbehavior and is surfaced to the
// caller, who re-queries; with a lagging replica, failing over by hand
// (Reconnect) or waiting are both sound, because staleness is bounded
// by the summaries this session already holds, not by anything the
// replica says.
func (c *Client) QueryBatch(ranges []core.Range) ([]*core.Answer, []*core.FreshnessReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	hops := 1
	if c.fleet() {
		hops = len(c.addrs)
	}
	var lastErr error
	for hop := 0; hop < hops; hop++ {
		answers, err := c.fetchBatchRetry(ranges)
		if err == nil {
			var reports []*core.FreshnessReport
			if reports, err = c.verify(answers, ranges); err == nil {
				return answers, reports, nil
			}
		}
		if !c.fleet() || !quarantinable(err) {
			return nil, nil, err
		}
		lastErr = err
		if herr := c.hopReplica(err); herr != nil {
			return nil, nil, fmt.Errorf("%w (dropping replica for: %v)", herr, err)
		}
	}
	return nil, nil, lastErr
}

// SyncSummaries fetches the certified summaries published at or after
// since and ingests the ones newer than the session already holds
// (each is signature-checked and must chain onto the held sequence).
// It returns how many were ingested. A fresh session syncs from 0 —
// the log-in back-history fetch of §3.1 — and thereafter picks up new
// summaries from the answers themselves. The server caps each response
// frame, so the sync pages with advancing since-timestamps until a
// response comes back empty.
func (c *Client) SyncSummaries(since int64) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	err := c.withRetry(func() error {
		n, oerr := c.syncSummaries(since)
		total += n
		return oerr
	})
	return total, err
}

// syncSummaries is one sync attempt: page through the server's stream
// from since until a response comes back empty. Re-running it after a
// mid-sync fault is harmless — already-held sequence numbers are
// cross-checked and skipped, so the retry wrapper can treat the whole
// sync as idempotent.
func (c *Client) syncSummaries(since int64) (int, error) {
	total := 0
	cursor := since
	for {
		sums, err := c.fetchSummaries(cursor)
		if err != nil {
			return total, err
		}
		if len(sums) == 0 {
			return total, nil
		}
		n, err := c.ingestSummaries(sums)
		total += n
		if err != nil {
			return total, err
		}
		next := sums[len(sums)-1].TS + 1
		if next <= cursor {
			return total, nil // defensive: a non-advancing server cannot loop us
		}
		cursor = next
	}
}

// fetchSummariesRetry is fetchSummaries under the retry policy, for
// callers outside withRetry (the Verify gap bridge).
func (c *Client) fetchSummariesRetry(since int64) ([]freshness.Summary, error) {
	var sums []freshness.Summary
	err := c.withRetry(func() error {
		var oerr error
		sums, oerr = c.fetchSummaries(since)
		return oerr
	})
	if err != nil {
		return nil, err
	}
	return sums, nil
}

// fetchSummaries round-trips one summaries-since request.
func (c *Client) fetchSummaries(since int64) ([]freshness.Summary, error) {
	c.armDeadline()
	defer c.clearDeadline()
	req := wire.AppendSummariesReq(wire.GetBuffer(), since)
	werr := wire.WriteFrame(c.bw, req)
	wire.PutBuffer(req)
	if werr != nil {
		return nil, werr
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	data, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	kind, err := wire.Kind(data)
	if err != nil {
		return nil, err
	}
	if kind == 'E' {
		return nil, decodeErrorFrame(data)
	}
	return wire.DecodeSummaries(data)
}

// ingestSummaries folds a summary batch into the verifier, skipping
// sequence numbers already held.
func (c *Client) ingestSummaries(sums []freshness.Summary) (int, error) {
	held := uint64(0)
	if latest, ok := c.verifier.LatestSummary(); ok {
		held = latest.Seq
	}
	n := 0
	for _, s := range sums {
		if s.Seq <= held {
			if err := c.checkHeld(&s); err != nil {
				return n, err
			}
			continue
		}
		if err := c.verifier.IngestSummary(s); err != nil {
			return n, fmt.Errorf("client: summary %d: %w", s.Seq, err)
		}
		held = s.Seq
		n++
	}
	c.stats.Summaries += uint64(n)
	return n, nil
}
