package client

import (
	"errors"
	"math/rand"
	"time"

	"authdb/internal/wire"
)

// RetryPolicy governs automatic recovery from transport faults and
// overload rejections. The zero value disables retries (one attempt,
// the pre-hardening behavior). Only idempotent requests are ever
// retried — 'Q' range queries and 'S' summary fetches are read-only —
// and verification always runs at most once, on the attempt that
// finally delivered bytes: a retry can never cause an answer to be
// accepted that was not fully verified.
type RetryPolicy struct {
	// MaxAttempts is the total tries per operation, including the
	// first (<= 1 disables retries).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles
	// each retry (0 = 5ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (0 = 1s).
	MaxDelay time.Duration
	// MaxElapsed bounds the total time one operation may spend across
	// all attempts, backoff sleeps included (0 = no budget). A backoff
	// that would overrun the budget is truncated to the remainder, the
	// operation gets one final attempt, and then the last error is
	// surfaced even if MaxAttempts remain — callers with deadlines
	// bound their worst case in time, not in attempt counts whose
	// durations they cannot predict.
	MaxElapsed time.Duration
	// Jitter randomizes each delay by ±Jitter fraction so a fleet of
	// backed-off clients does not stampede in lockstep (0 = 0.2; use a
	// negative value for none).
	Jitter float64
	// Seed makes the jitter stream deterministic for replayable tests
	// (0 = 1).
	Seed int64
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// delay computes the backoff before attempt+1 (attempt counts from 1),
// exponential from BaseDelay, capped at MaxDelay, jittered by rng.
func (p RetryPolicy) delay(attempt int, rng *rand.Rand) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = time.Second
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	jit := p.Jitter
	if jit == 0 {
		jit = 0.2
	}
	if jit > 0 && rng != nil {
		span := float64(d) * jit
		d += time.Duration(rng.Float64()*2*span - span)
		if d < 0 {
			d = 0
		}
	}
	return d
}

// retryClass buckets an operation error by the recovery it permits.
type retryClass int

const (
	// rcFatal: retrying cannot help (verification failure, divergence,
	// semantic server error) — surface it.
	rcFatal retryClass = iota
	// rcBackoff: the connection is healthy but the server shed the
	// request; back off and resend.
	rcBackoff
	// rcReconnect: the transport is broken or out of sync; reconnect
	// (which re-anchors the summary stream) before resending.
	rcReconnect
)

// classify maps an operation error to its retry class. The guiding
// invariant: a fault may fail a request, but never widen what the
// client will accept — so anything cryptographic or semantic is fatal,
// and only transport-shaped failures are retried.
func classify(err error) retryClass {
	switch {
	case errors.Is(err, ErrDiverged):
		// Rollback evidence must never be retried away.
		return rcFatal
	case errors.Is(err, ErrConfig):
		// Bad arguments fail identically on every attempt.
		return rcFatal
	case errors.Is(err, ErrOverloaded):
		return rcBackoff
	case errors.Is(err, ErrBadFrame):
		// The server could not parse a request this client knows it
		// encoded correctly: in-flight corruption. Resend on a fresh
		// connection (the stream may be out of sync past the mangled
		// frame).
		return rcReconnect
	case errors.Is(err, ErrServer):
		// A decoded, semantically-meant server error (bad range, ...):
		// deterministic, not worth resending.
		return rcFatal
	case errors.Is(err, wire.ErrCorrupt):
		// The response stream is garbled; framing sync is gone.
		return rcReconnect
	default:
		// Dials, deadlines, resets, EOF — the transport failed.
		return rcReconnect
	}
}
