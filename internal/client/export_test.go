package client

import "time"

// SetSleep replaces the backoff sleeper so tests observe and skip real
// delays.
func (c *Client) SetSleep(fn func(time.Duration)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sleep = fn
}
