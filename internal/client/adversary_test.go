package client_test

import (
	"errors"
	"net"
	"sync"
	"testing"

	"authdb/internal/client"
	"authdb/internal/core"
	"authdb/internal/freshness"
	"authdb/internal/sigagg"
	"authdb/internal/wire"
)

// tamperMode selects the adversary's behavior.
type tamperMode int

const (
	tamperNone    tamperMode = iota
	tamperSigFlip            // flip the answer's aggregate signature
	tamperRowSwap            // reorder the answer's records
	tamperReplay             // re-serve captured pre-update responses
)

// tamperSrv is a Byzantine replica front: a frame-aware
// man-in-the-middle that decodes real responses from an honest
// upstream, mutates them per mode, and re-encodes — so everything it
// sends is syntactically perfect protocol and only the cryptography
// can catch it. In replay mode it answers from responses captured
// before an update, without consulting the upstream at all (the
// paper's stale-publisher attack).
type tamperSrv struct {
	ln       net.Listener
	upstream string

	mu     sync.Mutex
	mode   tamperMode
	cached map[byte][]byte // first captured response per request kind
}

func newTamperSrv(t *testing.T, upstream string) *tamperSrv {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ts := &tamperSrv{ln: ln, upstream: upstream, cached: make(map[byte][]byte)}
	go ts.acceptLoop()
	t.Cleanup(func() { ln.Close() })
	return ts
}

func (ts *tamperSrv) Addr() string { return ts.ln.Addr().String() }

func (ts *tamperSrv) SetMode(m tamperMode) {
	ts.mu.Lock()
	ts.mode = m
	ts.mu.Unlock()
}

func (ts *tamperSrv) acceptLoop() {
	for {
		down, err := ts.ln.Accept()
		if err != nil {
			return
		}
		go ts.serve(down)
	}
}

// serve relays one downstream session in request/response lock-step.
func (ts *tamperSrv) serve(down net.Conn) {
	defer down.Close()
	up, err := net.Dial("tcp", ts.upstream)
	if err != nil {
		return
	}
	defer up.Close()
	var req, resp []byte
	for {
		if req, err = wire.ReadFrame(down, req, 0); err != nil {
			return
		}
		reqKind, err := wire.Kind(req)
		if err != nil {
			return
		}
		ts.mu.Lock()
		mode := ts.mode
		replayed := ts.cached[reqKind]
		ts.mu.Unlock()
		if mode == tamperReplay && replayed != nil {
			// Pure replay: the upstream is never asked; the client gets
			// yesterday's truth, faithfully signed.
			if err := wire.WriteFrame(down, replayed); err != nil {
				return
			}
			continue
		}
		if err := wire.WriteFrame(up, req); err != nil {
			return
		}
		if resp, err = wire.ReadFrame(up, resp, 0); err != nil {
			return
		}
		ts.mu.Lock()
		if _, dup := ts.cached[reqKind]; !dup {
			ts.cached[reqKind] = append([]byte(nil), resp...)
		}
		ts.mu.Unlock()
		out := ts.mutate(mode, resp)
		if err := wire.WriteFrame(down, out); err != nil {
			return
		}
	}
}

// mutate applies the mode's forgery to one response frame.
func (ts *tamperSrv) mutate(mode tamperMode, frame []byte) []byte {
	kind, err := wire.Kind(frame)
	if err != nil || kind != 'A' {
		return frame
	}
	switch mode {
	case tamperSigFlip, tamperRowSwap:
		ans, err := wire.DecodeAnswer(frame)
		if err != nil {
			return frame
		}
		if mode == tamperSigFlip {
			if len(ans.Chain.Agg) == 0 {
				return frame
			}
			ans.Chain.Agg[0] ^= 0x01
		} else {
			if len(ans.Chain.Records) < 2 {
				return frame
			}
			r := ans.Chain.Records
			r[0], r[1] = r[1], r[0]
		}
		out, err := wire.AppendAnswer(nil, ans)
		if err != nil {
			return frame
		}
		return out
	default:
		return frame
	}
}

// advance publishes one update to the queried range plus a certified
// period close, so replayed answers become provably stale.
func advance(t *testing.T, sys *core.System, key int64, ts int64) {
	t.Helper()
	msg, err := sys.DA.Update(key, [][]byte{[]byte("post-capture")}, ts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.QS.Apply(msg); err != nil {
		t.Fatal(err)
	}
	sum, err := sys.DA.ClosePeriod(ts + 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.QS.Apply(sum); err != nil {
		t.Fatal(err)
	}
}

// TestAdversarySigFlipNeverAccepted: a replica that bit-flips the
// aggregate signature — everything else intact — fails verification,
// and the flip is recognized as replica misbehavior, not transport
// noise that retries could wave through.
func TestAdversarySigFlipNeverAccepted(t *testing.T) {
	sys, keys, addr := fixture(t, 200)
	ts := newTamperSrv(t, addr)
	ts.SetMode(tamperSigFlip)
	cl, err := client.Dial(ts.Addr(), client.Config{Scheme: sys.Scheme, Pub: sys.Pub})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, _, err = cl.Query(keys[5], keys[40])
	if err == nil {
		t.Fatal("forged signature accepted")
	}
	if !errors.Is(err, sigagg.ErrVerify) {
		t.Fatalf("sig flip surfaced as %v, want sigagg.ErrVerify", err)
	}
	if st := cl.Stats(); st.Verified != 0 {
		t.Fatalf("%d answers verified against a forging replica", st.Verified)
	}
}

// TestAdversaryRowSwapNeverAccepted: reordering two records — a
// completeness attack leaving every byte individually authentic —
// breaks the chained digests.
func TestAdversaryRowSwapNeverAccepted(t *testing.T) {
	sys, keys, addr := fixture(t, 200)
	ts := newTamperSrv(t, addr)
	ts.SetMode(tamperRowSwap)
	cl, err := client.Dial(ts.Addr(), client.Config{Scheme: sys.Scheme, Pub: sys.Pub})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, _, err = cl.Query(keys[5], keys[40])
	if err == nil {
		t.Fatal("reordered answer accepted")
	}
	if !errors.Is(err, sigagg.ErrVerify) {
		t.Fatalf("row swap surfaced as %v, want sigagg.ErrVerify", err)
	}
}

// TestAdversaryStaleReplayDetected: a replica that re-serves
// pre-update cached answers — perfectly signed, just old — is caught
// by the freshness machinery: the session's held summaries prove a
// newer version of the answered records exists.
func TestAdversaryStaleReplayDetected(t *testing.T) {
	sys, keys, addr := fixture(t, 200)
	// One closed period so the capture-phase answer carries summaries.
	sum, err := sys.DA.ClosePeriod(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.QS.Apply(sum); err != nil {
		t.Fatal(err)
	}
	ts := newTamperSrv(t, addr)
	cl, err := client.Dial(ts.Addr(), client.Config{Scheme: sys.Scheme, Pub: sys.Pub})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Capture phase: honest pass-through; the adversary records the
	// response.
	if _, _, err := cl.Query(keys[5], keys[40]); err != nil {
		t.Fatal(err)
	}
	// The world moves on: a record in the range changes, a new period
	// certifies it, and the session learns the new summary.
	advance(t, sys, keys[10], 3)
	if _, err := cl.SyncSummaries(0); err != nil {
		t.Fatal(err)
	}
	// Replay phase: the adversary serves the pre-update answer.
	ts.SetMode(tamperReplay)
	_, _, err = cl.Query(keys[5], keys[40])
	if err == nil {
		t.Fatal("replayed pre-update answer accepted as fresh")
	}
	if !errors.Is(err, freshness.ErrStale) {
		t.Fatalf("stale replay surfaced as %v, want freshness.ErrStale", err)
	}
}

// TestAdversaryReplayedSummariesDetected: replaying the summary stream
// itself (stale 'F' responses) cannot hide an update from a session
// that already holds the newer summary — ingestion only moves forward,
// so the replay is inert and the stale answers it accompanies still
// trip ErrStale.
func TestAdversaryReplayedSummariesDetected(t *testing.T) {
	sys, keys, addr := fixture(t, 200)
	sum, err := sys.DA.ClosePeriod(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.QS.Apply(sum); err != nil {
		t.Fatal(err)
	}
	ts := newTamperSrv(t, addr)
	cl, err := client.Dial(ts.Addr(), client.Config{Scheme: sys.Scheme, Pub: sys.Pub})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Capture an 'F' page and an 'A' answer pre-update.
	if _, err := cl.SyncSummaries(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Query(keys[5], keys[40]); err != nil {
		t.Fatal(err)
	}
	held := cl.SummaryCount()
	advance(t, sys, keys[10], 3)
	if _, err := cl.SyncSummaries(0); err != nil {
		t.Fatal(err)
	}
	if cl.SummaryCount() <= held {
		t.Fatal("fixture: session never learned the post-update summary")
	}
	ts.SetMode(tamperReplay)
	// The replayed 'F' page is the pre-update stream: already held,
	// ingesting it again is a no-op — the anchor never rolls back.
	if _, err := cl.SyncSummaries(0); err != nil {
		t.Fatalf("replayed old summaries must be inert, got %v", err)
	}
	if cl.SummaryCount() != held+1 {
		t.Fatalf("summary count moved under replay: %d", cl.SummaryCount())
	}
	// And the replayed stale answer is still caught.
	if _, _, err := cl.Query(keys[5], keys[40]); !errors.Is(err, freshness.ErrStale) {
		t.Fatalf("stale replay surfaced as %v, want freshness.ErrStale", err)
	}
}
