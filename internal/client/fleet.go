package client

import (
	"errors"
	"fmt"
	"net"

	"authdb/internal/sigagg"
	"authdb/internal/wire"
)

// Replica fleets. A session dialed with DialFleet knows the whole
// replica set and treats every member as interchangeable — and equally
// untrusted. Transport faults and overload sheds fail the session over
// to the next replica (each switch re-anchoring the certified summary
// stream, so no replica can slip the session a rolled-back view), while
// cryptographic evidence of misbehavior — tampered frames, forged
// signatures, a forked summary stream — quarantines the replica for the
// rest of the session. Quarantine is an availability decision, not a
// trust decision: a Byzantine replica was never trusted in the first
// place, the session just stops wasting round trips on it.

// ErrAllQuarantined reports that every replica in the set has been
// quarantined for serving tampered or diverged state. The session is
// out of servers it is willing to talk to; a fresh session (and an
// operator look at the fleet) is the only way forward.
var ErrAllQuarantined = errors.New("client: every replica in the set is quarantined")

// DialFleet connects to the first reachable replica of the set. The
// session remembers the whole set and fails over between its members;
// verification is identical to a single-server session — replicas hold
// no keys and their answers carry the owner's signatures, so switching
// servers never widens what the session accepts.
func DialFleet(addrs []string, cfg Config) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%w: empty replica set", ErrConfig)
	}
	var lastErr error
	for i, addr := range addrs {
		c, err := Dial(addr, cfg)
		if err != nil {
			lastErr = err
			continue
		}
		c.addrs = append([]string(nil), addrs...)
		c.cur = i
		return c, nil
	}
	return nil, lastErr
}

// fleet reports whether the session has anywhere to fail over to.
func (c *Client) fleet() bool { return len(c.addrs) > 1 }

// CurrentAddr reports which server the session is connected to — with
// a fleet, the replica that served (and gets attributed) the most
// recent responses.
func (c *Client) CurrentAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addr
}

// Quarantined snapshots the session's quarantine list: replica address
// to the evidence that condemned it.
func (c *Client) Quarantined() map[string]error {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]error, len(c.quar))
	for a, e := range c.quar {
		out[a] = e
	}
	return out
}

// quarantinable reports whether err is evidence of replica misbehavior
// — something an honest server cannot send — rather than a fault of
// the path to it. Divergence is authenticated rollback/fork evidence;
// corrupt frames and verification failures mean the bytes themselves
// were wrong.
func quarantinable(err error) bool {
	return errors.Is(err, ErrDiverged) ||
		errors.Is(err, wire.ErrCorrupt) ||
		errors.Is(err, sigagg.ErrVerify)
}

// quarantineCur condemns the currently-connected replica for the
// session. Callers hold c.mu.
func (c *Client) quarantineCur(cause error) {
	if len(c.addrs) == 0 {
		return
	}
	if _, dup := c.quar[c.addr]; dup {
		return
	}
	if c.quar == nil {
		c.quar = make(map[string]error)
	}
	c.quar[c.addr] = cause
	c.stats.Quarantines++
}

// advance moves the failover cursor to the next non-quarantined
// replica (a no-op when there is none). Callers hold c.mu.
func (c *Client) advance() {
	n := len(c.addrs)
	for i := 1; i <= n; i++ {
		idx := (c.cur + i) % n
		if _, bad := c.quar[c.addrs[idx]]; !bad {
			c.cur = idx
			return
		}
	}
}

// redialFleet connects to the first usable replica at or after the
// cursor, skipping quarantined members. Callers hold c.mu.
func (c *Client) redialFleet() error {
	n := len(c.addrs)
	var lastErr error
	tried := 0
	for i := 0; i < n; i++ {
		idx := (c.cur + i) % n
		addr := c.addrs[idx]
		if _, bad := c.quar[addr]; bad {
			continue
		}
		tried++
		conn, err := net.DialTimeout("tcp", addr, c.cfg.DialTimeout)
		if err != nil {
			lastErr = fmt.Errorf("client: reconnect %s: %w", addr, err)
			continue
		}
		c.cur = idx
		if addr != c.addr {
			c.stats.Failovers++
		}
		c.addr = addr
		c.conn = conn
		c.resetBuffers()
		c.stats.Reconnects++
		return nil
	}
	if tried == 0 {
		return ErrAllQuarantined
	}
	return lastErr
}

// hopReplica condemns the current replica for cause and re-anchors the
// session through the next usable one — the verify-stage failover: the
// fetch succeeded, but what arrived was tampered or forked, so the
// transport-level retry machinery never saw an error. Callers hold
// c.mu. The loop terminates because every quarantinable re-anchor
// failure condemns another replica and the set is finite.
func (c *Client) hopReplica(cause error) error {
	c.quarantineCur(cause)
	for {
		if err := c.redial(); err != nil {
			return err
		}
		if err := c.reanchor(); err != nil {
			if quarantinable(err) {
				c.quarantineCur(err)
				continue
			}
			return err
		}
		return nil
	}
}
