package client_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"authdb/internal/client"
	"authdb/internal/core"
	"authdb/internal/server"
	"authdb/internal/sigagg/xortest"
	"authdb/internal/wire"
	"authdb/internal/workload"
)

// fixture boots a loaded system behind a loopback NetServer.
func fixture(t *testing.T, n int) (*core.System, []int64, string) {
	t.Helper()
	sys, err := core.NewSystem(xortest.New(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs := workload.Records(workload.Config{N: n, RecLen: 64, Seed: 3})
	keys := workload.Keys(recs)
	msg, err := sys.DA.Load(recs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.QS.Apply(msg); err != nil {
		t.Fatal(err)
	}
	srv := server.NewNetServer(sys.QS, server.NetConfig{})
	ln, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return sys, keys, ln.Addr().String()
}

func TestDialValidation(t *testing.T) {
	if _, err := client.Dial("127.0.0.1:1", client.Config{}); err == nil {
		t.Fatal("Dial accepted a config without scheme/key")
	}
}

func TestPipelinedOrdering(t *testing.T) {
	sys, keys, addr := fixture(t, 400)
	cl, err := client.Dial(addr, client.Config{Scheme: sys.Scheme, Pub: sys.Pub})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ranges := make([]core.Range, 16)
	for i := range ranges {
		ranges[i] = core.Range{Lo: keys[i*20], Hi: keys[i*20+10]}
	}
	answers, _, err := cl.QueryBatch(ranges)
	if err != nil {
		t.Fatal(err)
	}
	for i, ans := range answers {
		if ans.Chain.Lo != ranges[i].Lo || ans.Chain.Hi != ranges[i].Hi {
			t.Fatalf("response %d is for [%d,%d], requested [%d,%d]",
				i, ans.Chain.Lo, ans.Chain.Hi, ranges[i].Lo, ranges[i].Hi)
		}
		if len(ans.Chain.Records) != 11 {
			t.Fatalf("response %d: %d records, want 11", i, len(ans.Chain.Records))
		}
	}
}

// TestTamperedAnswerRejected: what the verifying client exists for —
// bytes from the untrusted server are not believed.
func TestTamperedAnswerRejected(t *testing.T) {
	sys, keys, addr := fixture(t, 200)
	cl, err := client.Dial(addr, client.Config{Scheme: sys.Scheme, Pub: sys.Pub})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ranges := []core.Range{{Lo: keys[5], Hi: keys[40]}}
	answers, err := cl.FetchBatch(ranges)
	if err != nil {
		t.Fatal(err)
	}
	// Value forgery.
	evil := *answers[0].Chain.Records[3]
	evil.Attrs = [][]byte{[]byte("forged")}
	answers[0].Chain.Records[3] = &evil
	if _, err := cl.Verify(answers, ranges); err == nil {
		t.Fatal("tampered answer verified")
	}
	// Record drop (completeness attack).
	answers, err = cl.FetchBatch(ranges)
	if err != nil {
		t.Fatal(err)
	}
	ca := answers[0].Chain
	ca.Records = append(ca.Records[:7:7], ca.Records[8:]...)
	if _, err := cl.Verify(answers, ranges); err == nil {
		t.Fatal("incomplete answer verified")
	}
}

// TestCorruptedConflictingSummaryIsNotDivergence: a re-delivered
// summary that conflicts with the held copy is accused of rollback only
// when it is validly signed. Garbled bytes that happen to decode are
// transport corruption — retryable — or a hostile network could forge
// "divergence" with a bit flip and kill honest sessions. (The
// validly-signed conflict case is covered by the server restart
// rollback test, which really does rewind durable state.)
func TestCorruptedConflictingSummaryIsNotDivergence(t *testing.T) {
	sys, keys, addr := fixture(t, 200)
	// Publish one certified summary so answers have something to attach.
	msg, err := sys.DA.ClosePeriod(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.QS.Apply(msg); err != nil {
		t.Fatal(err)
	}
	cl, err := client.Dial(addr, client.Config{Scheme: sys.Scheme, Pub: sys.Pub})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// First round ingests the certified summary stream.
	if _, _, err := cl.Query(keys[5], keys[40]); err != nil {
		t.Fatal(err)
	}
	// The next answer re-delivers the held summary; corrupt that copy.
	ranges := []core.Range{{Lo: keys[5], Hi: keys[40]}}
	answers, err := cl.FetchBatch(ranges)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers[0].Summaries) == 0 || len(answers[0].Summaries[0].Compressed) == 0 {
		t.Fatal("fixture answer carries no re-delivered summary to corrupt")
	}
	answers[0].Summaries[0].Compressed[0] ^= 0x40
	_, err = cl.Verify(answers, ranges)
	if !errors.Is(err, wire.ErrCorrupt) {
		t.Fatalf("corrupted conflicting summary: %v, want wire.ErrCorrupt", err)
	}
	if errors.Is(err, client.ErrDiverged) {
		t.Fatal("transport corruption misdiagnosed as stream divergence")
	}
}

// TestHostileServer: a peer that speaks garbage is rejected at the wire
// layer, before any cryptographic check.
func TestHostileServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 64)
		conn.Read(buf)
		// A syntactically valid frame whose payload is not a protocol
		// message.
		wire.WriteFrame(conn, []byte{wire.Version, 'X', 1, 2, 3})
	}()
	sys, err := core.NewSystem(xortest.New(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cl, err := client.Dial(ln.Addr().String(), client.Config{Scheme: sys.Scheme, Pub: sys.Pub})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Fetch(1, 2); !errors.Is(err, wire.ErrCorrupt) {
		t.Fatalf("garbage frame: %v, want ErrCorrupt", err)
	}
}
