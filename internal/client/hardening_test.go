package client_test

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"authdb/internal/client"
	"authdb/internal/core"
	"authdb/internal/faultnet"
	"authdb/internal/sigagg/xortest"
)

// TestConcurrentClientSerialized is the S-mutex regression: one Client,
// many goroutines, every answer still verified and matched to its own
// range. Run under -race this also proves the internal serialization.
func TestConcurrentClientSerialized(t *testing.T) {
	sys, keys, addr := fixture(t, 400)
	cl, err := client.Dial(addr, client.Config{Scheme: sys.Scheme, Pub: sys.Pub})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const workers, rounds = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				lo := keys[(w*17+r*3)%300]
				hi := keys[(w*17+r*3)%300+50]
				ans, _, err := cl.Query(lo, hi)
				if err != nil {
					errs <- err
					return
				}
				if ans.Chain.Lo != lo || ans.Chain.Hi != hi {
					errs <- errors.New("answer matched to the wrong caller's range")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := cl.Stats(); st.Verified != workers*rounds {
		t.Fatalf("verified %d answers, want %d", st.Verified, workers*rounds)
	}
}

// TestRetryThroughConnectionResets drives queries through a proxy that
// tears every connection after a few kilobytes. The retry machinery
// must reconnect (re-anchoring the summary stream each time) and finish
// every query with full verification.
func TestRetryThroughConnectionResets(t *testing.T) {
	sys, keys, addr := fixture(t, 400)
	proxy, err := faultnet.NewProxy(addr, faultnet.Profile{Name: "reset", ResetAfter: 24 << 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	cl, err := client.Dial(proxy.Addr(), client.Config{
		Scheme: sys.Scheme, Pub: sys.Pub,
		DialTimeout:    5 * time.Second,
		RequestTimeout: 5 * time.Second,
		Retry:          client.RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetSleep(func(time.Duration) {})

	if _, err := cl.SyncSummaries(0); err != nil {
		t.Fatal(err)
	}
	const queries = 40
	for i := 0; i < queries; i++ {
		lo := keys[(i*7)%300]
		ans, _, err := cl.Query(lo, keys[(i*7)%300+60])
		if err != nil {
			t.Fatalf("query %d through resetting proxy: %v", i, err)
		}
		if len(ans.Chain.Records) != 61 {
			t.Fatalf("query %d: %d records, want 61", i, len(ans.Chain.Records))
		}
	}
	st := cl.Stats()
	if st.Reconnects == 0 || st.Retries == 0 {
		t.Fatalf("proxy tore no connections the client noticed: %+v", st)
	}
	if st.Verified != queries {
		t.Fatalf("verified %d answers, want %d", st.Verified, queries)
	}
}

// TestRetryGivesUpWhenServerGone: with the upstream partitioned, the
// policy's attempts are exhausted and the last transport error
// surfaces — no hang, no silent success.
func TestRetryGivesUpWhenServerGone(t *testing.T) {
	sys, _, addr := fixture(t, 50)
	proxy, err := faultnet.NewProxy(addr, faultnet.Profile{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	cl, err := client.Dial(proxy.Addr(), client.Config{
		Scheme: sys.Scheme, Pub: sys.Pub,
		DialTimeout: time.Second,
		Retry:       client.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetSleep(func(time.Duration) {})
	// Partition: sever live pipes and point new ones at a dead port.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	proxy.SetUpstream(deadAddr)
	proxy.DropAll()
	if _, err := cl.Fetch(1, 2); err == nil {
		t.Fatal("fetch through a dead proxy succeeded")
	}
	if st := cl.Stats(); st.Retries != 2 {
		t.Fatalf("retries = %d, want 2 (MaxAttempts=3)", st.Retries)
	}
}

// TestRequestTimeout: a server that accepts and never answers must not
// hang the client past its per-request deadline.
func TestRequestTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold it open, answer nothing
		}
	}()
	sys, err := core.NewSystem(xortest.New(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cl, err := client.Dial(ln.Addr().String(), client.Config{
		Scheme: sys.Scheme, Pub: sys.Pub,
		RequestTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	_, ferr := cl.Fetch(1, 2)
	if ferr == nil {
		t.Fatal("fetch against a mute server succeeded")
	}
	var ne net.Error
	if !errors.As(ferr, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want a net timeout", ferr)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not bound the wait: %v", elapsed)
	}
}
