package client_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"authdb/internal/bloom"
	"authdb/internal/client"
	"authdb/internal/core"
	"authdb/internal/join"
	"authdb/internal/query"
	"authdb/internal/server"
	"authdb/internal/sigagg"
	"authdb/internal/sigagg/xortest"
	"authdb/internal/wire"
)

// planFixture is the two-relation catalog from the query package's
// tests, served over a real loopback NetServer with plans enabled:
// outer "o" (projection mode, keys 10..1000 step 10, two attribute
// slots) and inner "i" (multiples of 30), Bloom filter certified at one
// bit per key so negative probes and false-positive fallbacks both
// occur.
type planFixture struct {
	cat          *core.Catalog
	outer, inner *core.Relation
	eng          *query.Engine
	addr         string
}

func newPlanFixture(t *testing.T) *planFixture {
	t.Helper()
	cat, err := core.NewCatalog(xortest.New(), core.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	outer, err := cat.AddRelation("o", nil, []core.DAOption{core.WithAttrSigning()}, []core.Option{core.WithShards(4)})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := cat.AddRelation("i", nil, nil, []core.Option{core.WithShards(4)})
	if err != nil {
		t.Fatal(err)
	}
	var orecs, irecs []*core.Record
	for k := int64(10); k <= 1000; k += 10 {
		orecs = append(orecs, &core.Record{
			Key:   k,
			Attrs: [][]byte{[]byte(fmt.Sprintf("name-%d", k)), []byte(fmt.Sprintf("payload-%d", k))},
		})
		if k%30 == 0 {
			irecs = append(irecs, &core.Record{Key: k, Attrs: [][]byte{[]byte(fmt.Sprintf("inner-%d", k))}})
		}
	}
	for _, p := range []struct {
		rel  *core.Relation
		recs []*core.Record
	}{{outer, orecs}, {inner, irecs}} {
		msg, err := p.rel.DA.Load(p.recs, 100)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.rel.Deliver(msg); err != nil {
			t.Fatal(err)
		}
		if msg, err = p.rel.DA.ClosePeriod(1_000); err != nil {
			t.Fatal(err)
		}
		if err := p.rel.Deliver(msg); err != nil {
			t.Fatal(err)
		}
	}
	eng := query.NewEngine(query.WithParallelism(2))
	if err := eng.AddRelation("o", outer.QS); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddRelation("i", inner.QS); err != nil {
		t.Fatal(err)
	}
	fc, err := inner.DA.CertifyFilter(8, 1, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetFilter("i", fc); err != nil {
		t.Fatal(err)
	}
	srv := server.NewNetServer(outer.QS, server.NetConfig{})
	srv.EnablePlans(eng)
	ln, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return &planFixture{cat: cat, outer: outer, inner: inner, eng: eng, addr: ln.Addr().String()}
}

func (fx *planFixture) dial(t *testing.T, addr string) *client.Client {
	t.Helper()
	cl, err := client.Dial(addr, client.Config{
		Scheme:    xortest.New(),
		Pub:       fx.outer.Pub,
		Relations: fx.cat.PublicKeys(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func (fx *planFixture) spec(method join.Method, attrs []int) *query.Spec {
	return &query.Spec{Rel: "o", Lo: 105, Hi: 695, Attrs: attrs, Join: &query.JoinSpec{Rel: "i", Method: method}}
}

// TestQueryPlanEndToEnd: one wire request expressing σ/π/⋈ over two
// relations, fully verified client-side — the tentpole path.
func TestQueryPlanEndToEnd(t *testing.T) {
	fx := newPlanFixture(t)
	cl := fx.dial(t, fx.addr)
	comp, err := cl.QueryPlan(fx.spec(join.BF, []int{0}))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(comp.Outer.Records); got != 59 {
		t.Fatalf("%d outer records, want 59", got)
	}
	if got := len(comp.Join.Matches); got != 20 {
		t.Fatalf("%d matches, want 20", got)
	}
	if comp.Proj == nil || len(comp.Proj.Rows) != 59 {
		t.Fatalf("projection missing or wrong size: %+v", comp.Proj)
	}
	st := cl.Stats()
	if st.Plans != 1 {
		t.Fatalf("Plans = %d, want 1", st.Plans)
	}
	if st.JoinMatches != 20 {
		t.Fatalf("JoinMatches = %d, want 20", st.JoinMatches)
	}
	if st.JoinBFNegs == 0 || st.JoinBFFalls == 0 {
		t.Fatalf("BF counters not exercised: negs=%d falls=%d", st.JoinBFNegs, st.JoinBFFalls)
	}
	if st.JoinBFNegs+st.JoinBFFalls != 39 {
		t.Fatalf("negatives+fallbacks = %d, want 39 non-matches", st.JoinBFNegs+st.JoinBFFalls)
	}
	if st.AttrSigsVerif != 59 {
		t.Fatalf("AttrSigsVerif = %d, want 59 (59 rows × 1 attr)", st.AttrSigsVerif)
	}
	// The answer's tails seeded both relations' summary streams: a second
	// query advertises them and still verifies.
	if _, err := cl.QueryPlan(fx.spec(join.BF, []int{0})); err != nil {
		t.Fatal(err)
	}
	if est := fx.eng.Stats(); est.Cache.Hits == 0 {
		t.Fatalf("second identical plan missed the server cache: %+v", est.Cache)
	}
}

// TestQueryPlanBVAndSelectOnly: the boundary (BV) join method, and a
// plain select-project plan with no join section.
func TestQueryPlanBVAndSelectOnly(t *testing.T) {
	fx := newPlanFixture(t)
	cl := fx.dial(t, fx.addr)
	comp, err := cl.QueryPlan(fx.spec(join.BV, []int{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(comp.Join.Unmatched); got != 39 {
		t.Fatalf("%d unmatched proofs, want 39", got)
	}
	st := cl.Stats()
	if st.JoinBounds != 39 || st.JoinBFNegs != 0 {
		t.Fatalf("BV join counters: bounds=%d bfnegs=%d, want 39/0", st.JoinBounds, st.JoinBFNegs)
	}
	if st.AttrSigsVerif != 118 {
		t.Fatalf("AttrSigsVerif = %d, want 118 (59 rows × 2 attrs)", st.AttrSigsVerif)
	}
	// Select-project without a join rides the 'P' frame.
	comp, err = cl.QueryPlan(&query.Spec{Rel: "o", Lo: 105, Hi: 305, Attrs: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Join != nil {
		t.Fatal("unrequested join section present")
	}
	if got := len(comp.Outer.Records); got != 20 {
		t.Fatalf("%d records, want 20", got)
	}
	// Pure select: no projection either, rows come from the chain proof.
	comp, err = cl.QueryPlan(&query.Spec{Rel: "o", Lo: 105, Hi: 305})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Proj != nil {
		t.Fatal("unrequested projection section present")
	}
}

// TestQueryPlanSeesInnerUpdate: an insert into the inner relation plus
// filter re-certification turns a non-match into a match; the client
// session absorbs the new summary through the answer's tail and the
// fresh answer verifies — the cached pre-update join must not survive.
func TestQueryPlanSeesInnerUpdate(t *testing.T) {
	fx := newPlanFixture(t)
	cl := fx.dial(t, fx.addr)
	before, err := cl.QueryPlan(fx.spec(join.BF, []int{0}))
	if err != nil {
		t.Fatal(err)
	}
	// Key 200 is outer-only before the update.
	for _, m := range before.Join.Matches {
		if m.Lo == 200 {
			t.Fatal("fixture: 200 matched before the insert")
		}
	}
	msg, err := fx.inner.DA.Insert(&core.Record{Key: 200, Attrs: [][]byte{[]byte("late")}}, 1_500)
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.inner.Deliver(msg); err != nil {
		t.Fatal(err)
	}
	if msg, err = fx.inner.DA.ClosePeriod(2_000); err != nil {
		t.Fatal(err)
	}
	if err := fx.inner.Deliver(msg); err != nil {
		t.Fatal(err)
	}
	fc, err := fx.inner.DA.CertifyFilter(8, 1, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.eng.SetFilter("i", fc); err != nil {
		t.Fatal(err)
	}
	after, err := cl.QueryPlan(fx.spec(join.BF, []int{0}))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range after.Join.Matches {
		if m.Lo == 200 {
			found = true
		}
	}
	if !found {
		t.Fatal("post-insert match for 200 missing: stale cached join served and verified")
	}
}

// compTamperMode selects the composite-answer forgery.
type compTamperMode int

const (
	compTamperNone     compTamperMode = iota
	compTamperRowSwap                 // swap projected values between two records
	compTamperSlotSwap                // swap a record's projected values between slots
	compTamperBloomBit                // flip a bit in a certified Bloom partition
	compTamperDropBV                  // drop one boundary non-match proof
)

// compTamperSrv is the Byzantine front for the plan path: it decodes
// real 'C' responses from an honest upstream, applies one forgery, and
// re-encodes — syntactically perfect protocol, so only the composite
// VO verification can reject it.
type compTamperSrv struct {
	ln       net.Listener
	upstream string

	mu   sync.Mutex
	mode compTamperMode
}

func newCompTamperSrv(t *testing.T, upstream string) *compTamperSrv {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ts := &compTamperSrv{ln: ln, upstream: upstream}
	go ts.acceptLoop()
	t.Cleanup(func() { ln.Close() })
	return ts
}

func (ts *compTamperSrv) Addr() string { return ts.ln.Addr().String() }

func (ts *compTamperSrv) SetMode(m compTamperMode) {
	ts.mu.Lock()
	ts.mode = m
	ts.mu.Unlock()
}

func (ts *compTamperSrv) acceptLoop() {
	for {
		down, err := ts.ln.Accept()
		if err != nil {
			return
		}
		go ts.serve(down)
	}
}

func (ts *compTamperSrv) serve(down net.Conn) {
	defer down.Close()
	up, err := net.Dial("tcp", ts.upstream)
	if err != nil {
		return
	}
	defer up.Close()
	var req, resp []byte
	for {
		if req, err = wire.ReadFrame(down, req, 0); err != nil {
			return
		}
		if err := wire.WriteFrame(up, req); err != nil {
			return
		}
		if resp, err = wire.ReadFrame(up, resp, 0); err != nil {
			return
		}
		ts.mu.Lock()
		mode := ts.mode
		ts.mu.Unlock()
		out := ts.mutate(mode, resp)
		if err := wire.WriteFrame(down, out); err != nil {
			return
		}
	}
}

func (ts *compTamperSrv) mutate(mode compTamperMode, frame []byte) []byte {
	kind, err := wire.Kind(frame)
	if err != nil || kind != 'C' || mode == compTamperNone {
		return frame
	}
	comp, err := wire.DecodeComposite(frame)
	if err != nil {
		return frame
	}
	switch mode {
	case compTamperRowSwap:
		if comp.Proj == nil || len(comp.Proj.Rows) < 2 {
			return frame
		}
		r := comp.Proj.Rows
		r[0].Values[0], r[1].Values[0] = r[1].Values[0], r[0].Values[0]
	case compTamperSlotSwap:
		if comp.Proj == nil || len(comp.Proj.Rows) == 0 || len(comp.Proj.AttrIdxs) < 2 {
			return frame
		}
		v := comp.Proj.Rows[0].Values
		v[0], v[1] = v[1], v[0]
	case compTamperBloomBit:
		if comp.Join == nil {
			return frame
		}
		flipped := false
		for i := range comp.Join.Unmatched {
			up := &comp.Join.Unmatched[i]
			if up.Partition == nil {
				continue
			}
			raw := up.Partition.Filter.Marshal()
			raw[len(raw)-1] ^= 0x01
			f, err := bloom.Unmarshal(raw)
			if err != nil {
				return frame
			}
			up.Partition.Filter = f
			flipped = true
			break
		}
		if !flipped {
			return frame
		}
	case compTamperDropBV:
		if comp.Join == nil {
			return frame
		}
		dropped := false
		for i := range comp.Join.Unmatched {
			if comp.Join.Unmatched[i].Boundary != nil {
				comp.Join.Unmatched = append(comp.Join.Unmatched[:i:i], comp.Join.Unmatched[i+1:]...)
				dropped = true
				break
			}
		}
		if !dropped {
			return frame
		}
	}
	out, err := wire.AppendCompositeCore(nil, comp)
	if err != nil {
		return frame
	}
	return wire.AppendRelTails(out, comp.Tails)
}

// TestAdversaryProjectedValueSwapRejected: swapping projected values
// between two records — every byte individually authentic — breaks the
// attribute-aggregate binding of (record, slot, value) and is rejected
// as a verification failure.
func TestAdversaryProjectedValueSwapRejected(t *testing.T) {
	fx := newPlanFixture(t)
	ts := newCompTamperSrv(t, fx.addr)
	cl := fx.dial(t, ts.Addr())
	for _, mode := range []compTamperMode{compTamperRowSwap, compTamperSlotSwap} {
		ts.SetMode(mode)
		_, err := cl.QueryPlan(fx.spec(join.BF, []int{0, 1}))
		if err == nil {
			t.Fatalf("mode %d: swapped projection accepted", mode)
		}
		if !errors.Is(err, sigagg.ErrVerify) {
			t.Fatalf("mode %d: surfaced as %v, want sigagg.ErrVerify", mode, err)
		}
	}
	if st := cl.Stats(); st.Plans != 0 {
		t.Fatalf("%d plans accepted against a forging replica", st.Plans)
	}
	// Sanity: the honest path through the same proxy verifies.
	ts.SetMode(compTamperNone)
	if _, err := cl.QueryPlan(fx.spec(join.BF, []int{0, 1})); err != nil {
		t.Fatal(err)
	}
}

// TestAdversaryBloomBitFlipRejected: a flipped bit in a served Bloom
// partition — forcing a false negative-membership claim — no longer
// matches the owner-certified partition digest and is rejected.
func TestAdversaryBloomBitFlipRejected(t *testing.T) {
	fx := newPlanFixture(t)
	ts := newCompTamperSrv(t, fx.addr)
	ts.SetMode(compTamperBloomBit)
	cl := fx.dial(t, ts.Addr())
	_, err := cl.QueryPlan(fx.spec(join.BF, nil))
	if err == nil {
		t.Fatal("tampered Bloom partition accepted")
	}
	if !errors.Is(err, sigagg.ErrVerify) {
		t.Fatalf("bit flip surfaced as %v, want sigagg.ErrVerify", err)
	}
}

// TestAdversaryDroppedBoundaryRejected: dropping one BV non-match proof
// (claiming fewer join results than exist) leaves an outer key
// unresolved; the coverage check rejects the answer.
func TestAdversaryDroppedBoundaryRejected(t *testing.T) {
	fx := newPlanFixture(t)
	ts := newCompTamperSrv(t, fx.addr)
	ts.SetMode(compTamperDropBV)
	cl := fx.dial(t, ts.Addr())
	_, err := cl.QueryPlan(fx.spec(join.BV, nil))
	if err == nil {
		t.Fatal("join answer with a dropped non-match proof accepted")
	}
	if !errors.Is(err, sigagg.ErrVerify) {
		t.Fatalf("dropped boundary surfaced as %v, want sigagg.ErrVerify", err)
	}
}

// TestQueryPlanUnknownRelation: plans touching relations the session
// has no key for fail fast and fatally.
func TestQueryPlanUnknownRelation(t *testing.T) {
	fx := newPlanFixture(t)
	cl := fx.dial(t, fx.addr)
	_, err := cl.QueryPlan(&query.Spec{Rel: "nope", Lo: 1, Hi: 2})
	if !errors.Is(err, client.ErrConfig) {
		t.Fatalf("unknown relation surfaced as %v, want ErrConfig", err)
	}
	_, err = cl.QueryPlan(&query.Spec{Rel: "o", Lo: 1, Hi: 2, Join: &query.JoinSpec{Rel: "nope"}})
	if !errors.Is(err, client.ErrConfig) {
		t.Fatalf("unknown join relation surfaced as %v, want ErrConfig", err)
	}
}
