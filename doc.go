// Package authdb is a reproduction of "Scalable Verification for
// Outsourced Dynamic Databases" (Pang, Zhang, Mouratidis; VLDB 2009): a
// query-answer authentication system for outsourced databases built on
// signature aggregation rather than Merkle hash trees, providing
// authenticity, completeness and freshness guarantees while supporting
// concurrent updates.
//
// # Architecture
//
// Three parties (internal/core): a trusted DataAggregator owns the data
// and the signing key, chain-signs every record between its neighbours
// (internal/chain) and publishes certified ρ-period update summaries
// (internal/freshness); an untrusted QueryServer stores the signed
// records and answers range selections with correctness proofs; a
// user-side Verifier checks each answer with nothing but the
// aggregator's public key.
//
// The QueryServer is sharded by key range. Each shard pairs the paper's
// ASign B+-tree (internal/btree — records, boundaries, neighbours) with
// an incrementally maintained aggregation tree (internal/aggtree) over
// the same leaf signatures, so building the aggregate signature for a
// range proof costs O(log n) Combine operations per overlapped shard —
// assembled concurrently — instead of one aggregation per result
// record. A SigCache (internal/sigcache, §4 of the paper) can be pinned
// over a frozen population as an additional fast path; its tree
// mechanics live in aggtree too, as a pinned-frontier structure.
//
// In front of the tree walk sits a serving layer (internal/anscache +
// QueryServer.Serve): a sharded, epoch-versioned cache of fully
// materialized answers — records, aggregate signature and pre-encoded
// wire bytes — with singleflight coalescing so N concurrent identical
// cold requests cost one tree walk, and frequency-biased LRU admission.
// Updates bump per-shard epoch counters and thereby invalidate exactly
// the cached ranges they intersect; hot-range hits are O(1) and perform
// zero aggregation operations. internal/server pairs the cache with the
// wire codec and drives the closed-loop zipfian serving benchmark
// (BENCH_serve.json).
//
// The network front end turns the library into a deployable system:
// server.NetServer (daemon: cmd/authserve) exposes the wire protocol
// over TCP — length-prefixed frames, pipelined in-order responses,
// zero-copy writes from the answer cache's pooled encodings, graceful
// shutdown — and internal/client is the remote user: it pipelines range
// queries, recomputes every chain digest, batch-verifies aggregates and
// tracks the certified freshness summary stream, trusting only the
// aggregator's public key. authbench net measures the path over real
// loopback sockets with full client-side verification (BENCH_net.json);
// examples/remote is the end-to-end walkthrough.
//
// Aggregate-signature schemes live under internal/sigagg: bilinear
// aggregate signatures (sigagg/bas), condensed RSA (sigagg/crsa) and a
// zero-cost counting scheme for experiments (sigagg/xortest), all
// behind one Scheme interface with a batched, allocation-lean
// AggregateInto fast path. internal/wire carries the DA→server and
// server→user messages with pooled encode buffers.
//
// The implementation inventory is in DESIGN.md and README.md; runnable
// examples are under examples/, and cmd/authbench regenerates every
// table and figure of the paper plus the proof-construction benchmark
// (BENCH_proof.json). The root package carries the module documentation
// and the per-experiment benchmark suite (bench_test.go), including
// BenchmarkQuery, the n=1M/k=10k headline comparison of tree versus
// linear proof construction.
package authdb
