// Package authdb is a reproduction of "Scalable Verification for
// Outsourced Dynamic Databases" (Pang, Zhang, Mouratidis; VLDB 2009): a
// query-answer authentication system for outsourced databases built on
// signature aggregation rather than Merkle hash trees, providing
// authenticity, completeness and freshness guarantees while supporting
// concurrent updates.
//
// The implementation lives under internal/ (see DESIGN.md for the
// system inventory), runnable examples under examples/, and the
// experiment harness that regenerates every table and figure of the
// paper under cmd/authbench. The root package exists to carry the
// module documentation and the per-experiment benchmark suite
// (bench_test.go).
package authdb
